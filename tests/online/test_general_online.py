"""Unit and property tests for GEN-ONLINE (our Section-V instantiation)."""

import math

import pytest
from hypothesis import given, settings

from repro import (
    GeneralOnlineScheduler,
    IncOnlineScheduler,
    Job,
    JobSet,
    lower_bound,
    paper_fig2_ladder,
    random_general_ladder,
    run_online,
    uniform_workload,
)
from repro.online.general_online import node_group_budget
from repro.schedule.validate import assert_feasible
from tests.conftest import any_ladder_strategy, jobset_strategy


class TestNodeGroupBudget:
    def test_formula(self, dec3):
        # parent rate 2, node rate 1, 1 sibling: 2 * ceil(2) = 4
        assert node_group_budget(dec3, 1, 2, 1) == 4

    def test_more_siblings_smaller_budget(self):
        ladder = paper_fig2_ladder()
        assert node_group_budget(ladder, 1, 3, 4) <= node_group_budget(ladder, 1, 3, 1)


class TestGeneralOnline:
    def test_on_inc_ladder_matches_inc_online_types(self, inc3, rng):
        jobs = uniform_workload(50, rng, max_size=inc3.capacity(3))
        a = run_online(jobs, GeneralOnlineScheduler(inc3))
        b = run_online(jobs, IncOnlineScheduler(inc3))
        assert a.cost() == pytest.approx(b.cost(), rel=1e-12)

    def test_feasible_on_fig2(self, rng):
        ladder = paper_fig2_ladder()
        jobs = uniform_workload(80, rng, max_size=ladder.capacity(8))
        sched = run_online(jobs, GeneralOnlineScheduler(ladder))
        assert_feasible(sched, jobs)

    def test_job_types_follow_processing_path(self, rng):
        ladder = paper_fig2_ladder()
        forest = ladder.forest()
        jobs = uniform_workload(80, rng, max_size=ladder.capacity(8))
        sched = run_online(jobs, GeneralOnlineScheduler(ladder))
        for job, key in sched.assignment.items():
            c = job.size_class(ladder.capacities)
            assert key.type_index in forest.path_to_root(c)

    def test_root_absorbs_overflow(self):
        """Many concurrent class-1 jobs exceed node 1's budget and spill to
        the tree root's unbounded pools."""
        ladder = paper_fig2_ladder()  # tree {1,2,3} rooted at 3
        jobs = JobSet([Job(0.9, 0, 10, name=f"j{i}") for i in range(30)])
        sched = run_online(jobs, GeneralOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
        used_types = {k.type_index for k in sched.assignment.values()}
        assert 3 in used_types  # overflow reached the root

    def test_sqrt_m_mu_shape(self, rng):
        for m in (2, 4, 8):
            ladder = random_general_ladder(m, rng)
            jobs = uniform_workload(60, rng, max_size=ladder.capacity(m))
            sched = run_online(jobs, GeneralOnlineScheduler(ladder))
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            bound = 32.0 * math.sqrt(m) * (jobs.mu + 1.0)
            assert sched.cost() <= bound * lb + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=25, max_size=8.0), any_ladder_strategy(max_m=5))
    def test_property_feasible_on_any_ladder(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = run_online(jobs, GeneralOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
