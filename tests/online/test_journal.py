"""Tests for the decision journal."""

import pytest

from repro import (
    DecOnlineScheduler,
    Job,
    JobSet,
    dec_ladder,
    run_online,
    uniform_workload,
)
from repro.online.journal import JournalingScheduler, render_journal
from repro.schedule.validate import assert_feasible


class TestJournalingScheduler:
    def test_transparent_delegation(self, rng):
        """Wrapping must not change the schedule at all."""
        ladder = dec_ladder(3)
        jobs = uniform_workload(40, rng, max_size=ladder.capacity(3))
        plain = run_online(jobs, DecOnlineScheduler(ladder))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        journaled = run_online(jobs, wrapped)
        assert {(j.uid, k) for j, k in plain.assignment.items()} == {
            (j.uid, k) for j, k in journaled.assignment.items()
        }
        assert_feasible(journaled, jobs)

    def test_one_decision_per_job(self, rng):
        ladder = dec_ladder(2)
        jobs = uniform_workload(25, rng, max_size=ladder.capacity(2))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        assert len(wrapped.journal.decisions) == 25
        assert len(wrapped.journal.departures) == 25

    def test_active_count_balanced(self):
        ladder = dec_ladder(2)
        jobs = JobSet([Job(0.5, 0, 2), Job(0.5, 1, 3)])
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        # final departure leaves zero active
        assert wrapped.journal.departures[-1][0] == 0
        # first arrival saw one active (itself)
        assert wrapped.journal.decisions[0].active_jobs_after == 1

    def test_decisions_on_machine(self, rng):
        ladder = dec_ladder(2)
        jobs = uniform_workload(20, rng, max_size=ladder.capacity(2))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        for key in wrapped.journal.machines_used():
            assert wrapped.journal.decisions_on(key)

    def test_render(self, rng):
        ladder = dec_ladder(2)
        jobs = uniform_workload(50, rng, max_size=ladder.capacity(2))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        text = render_journal(wrapped.journal, limit=10)
        assert "50 placements" in text
        assert "more placements" in text
