"""Tests for the decision journal."""

import pytest

from repro import (
    DecOnlineScheduler,
    Job,
    JobSet,
    dec_ladder,
    run_online,
    uniform_workload,
)
from repro.online.journal import JournalingScheduler, render_journal
from repro.schedule.validate import assert_feasible


class TestJournalingScheduler:
    def test_transparent_delegation(self, rng):
        """Wrapping must not change the schedule at all."""
        ladder = dec_ladder(3)
        jobs = uniform_workload(40, rng, max_size=ladder.capacity(3))
        plain = run_online(jobs, DecOnlineScheduler(ladder))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        journaled = run_online(jobs, wrapped)
        assert {(j.uid, k) for j, k in plain.assignment.items()} == {
            (j.uid, k) for j, k in journaled.assignment.items()
        }
        assert_feasible(journaled, jobs)

    def test_one_decision_per_job(self, rng):
        ladder = dec_ladder(2)
        jobs = uniform_workload(25, rng, max_size=ladder.capacity(2))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        assert len(wrapped.journal.decisions) == 25
        assert len(wrapped.journal.departures) == 25

    def test_active_count_balanced(self):
        ladder = dec_ladder(2)
        jobs = JobSet([Job(0.5, 0, 2), Job(0.5, 1, 3)])
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        # final departure leaves zero active
        assert wrapped.journal.departures[-1][0] == 0
        # first arrival saw one active (itself)
        assert wrapped.journal.decisions[0].active_jobs_after == 1

    def test_decisions_on_machine(self, rng):
        ladder = dec_ladder(2)
        jobs = uniform_workload(20, rng, max_size=ladder.capacity(2))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        for key in wrapped.journal.machines_used():
            assert wrapped.journal.decisions_on(key)

    def test_render(self, rng):
        ladder = dec_ladder(2)
        jobs = uniform_workload(50, rng, max_size=ladder.capacity(2))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        text = render_journal(wrapped.journal, limit=10)
        assert "50 placements" in text
        assert "more placements" in text

    def test_render_without_truncation(self):
        ladder = dec_ladder(2)
        jobs = JobSet([Job(0.5, 0, 2), Job(0.5, 1, 3)])
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        text = render_journal(wrapped.journal)
        assert "2 placements" in text
        assert "more placements" not in text
        # one rendered line per decision plus the header
        assert len(text.splitlines()) == 3

    def test_machines_used_sorted_and_unique(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(30, rng, max_size=ladder.capacity(3))
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        used = wrapped.journal.machines_used()
        assert used == sorted(set(used))
        assert sum(len(wrapped.journal.decisions_on(k)) for k in used) == 30

    def test_decisions_on_unused_machine_is_empty(self):
        from repro.schedule.schedule import MachineKey

        ladder = dec_ladder(2)
        jobs = JobSet([Job(0.5, 0, 2)])
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        assert wrapped.journal.decisions_on(MachineKey(99, "nowhere")) == []

    def test_departures_are_count_then_uid(self):
        """Regression: each departure entry is ``(active_after, uid)`` —
        an int pair with the count first, matching the field's documentation."""
        ladder = dec_ladder(2)
        jobs = JobSet([Job(0.5, 0, 2, uid=7), Job(0.5, 1, 3, uid=8)])
        wrapped = JournalingScheduler(DecOnlineScheduler(ladder))
        run_online(jobs, wrapped)
        assert wrapped.journal.departures == [(1, 7), (0, 8)]
        for active_after, uid in wrapped.journal.departures:
            assert isinstance(active_after, int) and isinstance(uid, int)
