"""Unit tests for the online engine, including structural non-clairvoyance."""

import pytest

from repro import Job, JobSet, JobView, MachineKey, run_online, single_type_ladder


class RecordingScheduler:
    """Places every job alone on a type-1 machine and records what it saw."""

    def __init__(self, ladder):
        self.ladder = ladder
        self.seen_arrivals = []
        self.seen_departures = []
        self._n = 0

    def on_arrival(self, job):
        self.seen_arrivals.append(job)
        self._n += 1
        return MachineKey(1, ("rec", self._n))

    def on_departure(self, uid):
        self.seen_departures.append(uid)


class TestEngine:
    def test_arrival_order_and_schedule(self):
        ladder = single_type_ladder(capacity=10.0)
        jobs = JobSet([Job(1, 3, 5, name="late"), Job(1, 0, 9, name="early")])
        sched = run_online(jobs, RecordingScheduler(ladder))
        assert len(sched) == 2
        assert sched.cost() == pytest.approx(2.0 + 9.0)

    def test_views_hide_departure_time(self):
        ladder = single_type_ladder(capacity=10.0)
        jobs = JobSet([Job(1, 0, 7)])
        scheduler = RecordingScheduler(ladder)
        run_online(jobs, scheduler)
        view = scheduler.seen_arrivals[0]
        assert isinstance(view, JobView)
        assert not hasattr(view, "departure")
        assert view.size == 1.0 and view.arrival == 0.0

    def test_departures_delivered_in_order(self):
        ladder = single_type_ladder(capacity=10.0)
        a = Job(1, 0, 2, name="a")
        b = Job(1, 0, 5, name="b")
        scheduler = RecordingScheduler(ladder)
        run_online(JobSet([a, b]), scheduler)
        assert scheduler.seen_departures == [a.uid, b.uid]

    def test_departure_precedes_arrival_at_same_time(self):
        ladder = single_type_ladder(capacity=10.0)
        a = Job(1, 0, 4, name="a")
        b = Job(1, 4, 6, name="b")
        events = []

        class Spy(RecordingScheduler):
            def on_arrival(self, job):
                events.append(("arrive", job.uid))
                return super().on_arrival(job)

            def on_departure(self, uid):
                events.append(("depart", uid))

        run_online(JobSet([a, b]), Spy(ladder))
        assert events == [
            ("arrive", a.uid),
            ("depart", a.uid),
            ("arrive", b.uid),
            ("depart", b.uid),
        ]

    def test_bad_scheduler_return_rejected(self):
        ladder = single_type_ladder(capacity=10.0)

        class Bad(RecordingScheduler):
            def on_arrival(self, job):
                return "machine-1"

        with pytest.raises(TypeError):
            run_online(JobSet([Job(1, 0, 1)]), Bad(ladder))

    def test_empty_instance(self):
        ladder = single_type_ladder()
        sched = run_online(JobSet(), RecordingScheduler(ladder))
        assert sched.cost() == 0.0
