"""Tests for the clairvoyant extension (duration-classified First-Fit)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import Job, JobSet, bounded_mu_workload, dec_ladder, lower_bound
from repro.online.clairvoyant import DurationClassScheduler, run_clairvoyant
from repro.schedule.validate import assert_feasible
from tests.conftest import jobset_strategy


class TestDurationClassScheduler:
    def test_sees_departures(self, dec3):
        """Clairvoyant engine passes full Job objects (with departure)."""
        seen = []

        class Spy(DurationClassScheduler):
            def on_arrival(self, job):
                seen.append(job)
                return super().on_arrival(job)

        jobs = JobSet([Job(0.5, 0, 7)])
        run_clairvoyant(jobs, Spy(dec3))
        assert hasattr(seen[0], "departure")
        assert seen[0].departure == 7.0

    def test_duration_classes_separate_machines(self, dec3):
        # same size class, durations 1 and 10 (classes 0 and 3): no sharing
        a = Job(0.4, 0, 1, name="short")
        b = Job(0.4, 0, 10, name="long")
        sched = run_clairvoyant(JobSet([a, b]), DurationClassScheduler(dec3))
        assert sched.machine_of(a) != sched.machine_of(b)

    def test_same_class_shares(self, dec3):
        a = Job(0.4, 0, 4, name="x")
        b = Job(0.4, 1, 5, name="y")  # same duration class, fits same machine
        sched = run_clairvoyant(JobSet([a, b]), DurationClassScheduler(dec3))
        assert sched.machine_of(a) == sched.machine_of(b)

    def test_explicit_base_duration(self, dec3):
        sched = DurationClassScheduler(dec3, base_duration=1.0)
        assert sched._duration_class(1.0) == 0
        assert sched._duration_class(2.0) == 1
        assert sched._duration_class(7.9) == 2

    def test_flat_ratio_across_mu(self):
        """Clairvoyance should keep the ratio roughly flat as mu grows."""
        ladder = dec_ladder(3)
        rng = np.random.default_rng(8)
        ratios = []
        for mu in (1.0, 16.0, 64.0):
            jobs = bounded_mu_workload(150, rng, mu=mu, max_size=ladder.capacity(3))
            sched = run_clairvoyant(jobs, DurationClassScheduler(ladder))
            assert_feasible(sched, jobs)
            ratios.append(sched.cost() / lower_bound(jobs, ladder).value)
        assert max(ratios) < 4.0  # no mu blow-up

    def test_bad_return_type_rejected(self, dec3):
        class Bad(DurationClassScheduler):
            def on_arrival(self, job):
                return "nope"

        with pytest.raises(TypeError):
            run_clairvoyant(JobSet([Job(0.5, 0, 1)]), Bad(dec3))

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=25, max_size=8.0))
    def test_property_feasible(self, jobs):
        ladder = dec_ladder(3)
        sched = run_clairvoyant(jobs, DurationClassScheduler(ladder))
        assert_feasible(sched, jobs)
