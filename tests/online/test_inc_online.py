"""Unit and property tests for INC-ONLINE (Section IV)."""

import pytest
from hypothesis import given, settings

from repro import (
    IncOnlineScheduler,
    Job,
    JobSet,
    bounded_mu_workload,
    inc_ladder,
    lower_bound,
    run_online,
    uniform_workload,
)
from repro.schedule.validate import assert_feasible
from tests.conftest import inc_ladder_strategy, jobset_strategy


class TestIncOnline:
    def test_job_lands_in_its_class(self, inc3):
        # capacities 1, 1.5, 2.25
        jobs = JobSet([Job(0.5, 0, 1), Job(1.2, 0, 1), Job(2.0, 0, 1)])
        sched = run_online(jobs, IncOnlineScheduler(inc3))
        classes = sorted(k.type_index for k in sched.assignment.values())
        assert classes == [1, 2, 3]

    def test_classes_never_share_machines(self, inc3, rng):
        jobs = uniform_workload(80, rng, max_size=inc3.capacity(3))
        sched = run_online(jobs, IncOnlineScheduler(inc3))
        assert_feasible(sched, jobs)
        for job, key in sched.assignment.items():
            assert job.size_class(inc3.capacities) == key.type_index

    def test_oversize_rejected(self, inc3):
        with pytest.raises(ValueError):
            run_online(JobSet([Job(50.0, 0, 1)]), IncOnlineScheduler(inc3))

    def test_section4_bound_on_mu_workloads(self, rng):
        ladder = inc_ladder(4)
        for mu in (1.0, 4.0):
            jobs = bounded_mu_workload(80, rng, mu=mu, max_size=ladder.capacity(4))
            sched = run_online(jobs, IncOnlineScheduler(ladder))
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            assert sched.cost() <= (2.25 * jobs.mu + 6.75) * lb + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=25, max_size=4.0), inc_ladder_strategy(max_m=4))
    def test_property_feasible_and_bounded(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = run_online(jobs, IncOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        if lb > 0:
            assert sched.cost() <= (2.25 * jobs.mu + 6.75) * lb * (1 + 1e-9)
