"""Unit tests for homogeneous First-Fit ([14])."""

import pytest
from hypothesis import given, settings

from repro import (
    FirstFitScheduler,
    Job,
    JobSet,
    lower_bound,
    run_online,
    single_type_ladder,
    uniform_workload,
)
from repro.schedule.validate import assert_feasible
from tests.conftest import jobset_strategy


class TestFirstFit:
    def test_packs_lowest_index(self):
        ladder = single_type_ladder(capacity=2.0)
        jobs = JobSet(
            [
                Job(1.0, 0, 10, name="a"),
                Job(1.0, 1, 10, name="b"),  # fits machine 1
                Job(1.0, 2, 10, name="c"),  # machine 1 full -> machine 2
            ]
        )
        sched = run_online(jobs, FirstFitScheduler(ladder, 1))
        machines = {sched.machine_of(j).tag for j in jobs}
        assert machines == {("FF", 1), ("FF", 2)}

    def test_reuses_emptied_machine(self):
        ladder = single_type_ladder(capacity=1.0)
        a = Job(1.0, 0, 2, name="a")
        b = Job(1.0, 3, 5, name="b")
        sched = run_online(JobSet([a, b]), FirstFitScheduler(ladder, 1))
        assert sched.machine_of(a) == sched.machine_of(b)
        # cost counts only busy time: 2 + 2
        assert sched.cost() == pytest.approx(4.0)

    def test_oversize_job_raises(self):
        ladder = single_type_ladder(capacity=1.0)
        with pytest.raises(ValueError, match="does not fit"):
            run_online(JobSet([Job(2.0, 0, 1)]), FirstFitScheduler(ladder, 1))

    def test_mu_plus_3_bound_of_ref14(self, rng):
        """[14]: First-Fit is (mu+3)-competitive for MinUsageTime DBP."""
        ladder = single_type_ladder(capacity=4.0)
        for _ in range(3):
            jobs = uniform_workload(80, rng, max_size=4.0)
            sched = run_online(jobs, FirstFitScheduler(ladder, 1))
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            assert sched.cost() <= (jobs.mu + 3.0) * lb + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=30, max_size=4.0))
    def test_property_feasible_and_bounded(self, jobs):
        ladder = single_type_ladder(capacity=4.0)
        sched = run_online(jobs, FirstFitScheduler(ladder, 1))
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        if lb > 0:
            assert sched.cost() <= (jobs.mu + 3.0) * lb * (1 + 1e-9)
