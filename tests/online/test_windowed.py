"""Tests for the windowed semi-online scheduler."""

import pytest
from hypothesis import given, settings

from repro import dec_ladder, dec_offline, poisson_workload
from repro.online.windowed import windowed_schedule
from repro.schedule.validate import assert_feasible
from tests.conftest import jobset_strategy


class TestWindowed:
    def test_feasible(self, rng):
        ladder = dec_ladder(3)
        jobs = poisson_workload(80, rng, max_size=ladder.capacity(3))
        sched = windowed_schedule(jobs, ladder, dec_offline, window=5.0)
        assert_feasible(sched, jobs)

    def test_batches_never_share_machines(self, rng):
        ladder = dec_ladder(3)
        jobs = poisson_workload(60, rng, max_size=ladder.capacity(3))
        window = 5.0
        sched = windowed_schedule(jobs, ladder, dec_offline, window=window)
        for job, key in sched.assignment.items():
            assert key.tag[0] == "w"
            assert key.tag[1] == int(job.arrival // window)

    def test_giant_window_equals_offline_cost(self, rng):
        ladder = dec_ladder(3)
        jobs = poisson_workload(50, rng, max_size=ladder.capacity(3))
        horizon = max(j.departure for j in jobs) + 1
        a = windowed_schedule(jobs, ladder, dec_offline, window=horizon)
        b = dec_offline(jobs, ladder)
        assert a.cost() == pytest.approx(b.cost(), rel=1e-9)

    def test_invalid_window(self, rng, dec3):
        jobs = poisson_workload(5, rng, max_size=dec3.capacity(3))
        with pytest.raises(ValueError):
            windowed_schedule(jobs, dec3, dec_offline, window=0.0)

    @settings(deadline=None, max_examples=20)
    @given(jobset_strategy(max_jobs=20, max_size=8.0))
    def test_property_feasible_any_window(self, jobs):
        ladder = dec_ladder(3)
        for window in (0.5, 3.0, 100.0):
            sched = windowed_schedule(jobs, ladder, dec_offline, window=window)
            assert_feasible(sched, jobs)
