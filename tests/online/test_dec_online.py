"""Unit and property tests for DEC-ONLINE (Theorem 2)."""

import pytest
from hypothesis import given, settings

from repro import (
    DecOnlineScheduler,
    Job,
    JobSet,
    bounded_mu_workload,
    dec_ladder,
    lower_bound,
    run_online,
    uniform_workload,
)
from repro.online.dec_online import group_budget
from repro.analysis.metrics import busy_machine_profile
from repro.schedule.validate import assert_feasible
from tests.conftest import dec_ladder_strategy, jobset_strategy


class TestGroupBudget:
    def test_power_of_two(self):
        assert group_budget(2.0) == 4
        assert group_budget(4.0) == 12

    def test_factor(self):
        assert group_budget(2.0, factor=2.0) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            group_budget(0.9)


class TestDecOnline:
    def test_big_job_goes_to_group_b(self, dec3):
        # size in (g_1/2, g_1] = (0.5, 1]: Group B type 1
        jobs = JobSet([Job(0.8, 0, 2)])
        sched = run_online(jobs, DecOnlineScheduler(dec3))
        key = sched.machine_of(jobs.jobs[0])
        assert key.type_index == 1
        assert key.tag[0] == "B"

    def test_small_job_goes_to_group_a(self, dec3):
        jobs = JobSet([Job(0.4, 0, 2)])
        sched = run_online(jobs, DecOnlineScheduler(dec3))
        key = sched.machine_of(jobs.jobs[0])
        assert key.type_index == 1
        assert key.tag[0] == "A"

    def test_group_b_machines_host_one_job_at_a_time(self, dec3, rng):
        jobs = uniform_workload(100, rng, max_size=dec3.capacity(3))
        sched = run_online(jobs, DecOnlineScheduler(dec3))
        for key, members in sched.by_machine().items():
            if key.tag[0] == "B":
                assert JobSet(members).peak_demand() <= dec3.capacity(
                    key.type_index
                ) + 1e-9
                # one at a time: peak count of concurrent jobs is 1
                profile = JobSet(members).demand_profile()
                for job in members:
                    mid = (job.arrival + job.departure) / 2
                    others = [
                        o
                        for o in members
                        if o is not job and o.active_at(mid)
                    ]
                    assert not others

    def test_group_a_size_limit(self, dec3, rng):
        jobs = uniform_workload(100, rng, max_size=dec3.capacity(3))
        sched = run_online(jobs, DecOnlineScheduler(dec3))
        for job, key in sched.assignment.items():
            if key.tag[0] == "A":
                assert job.size <= dec3.capacity(key.type_index) / 2 + 1e-9

    def test_overflow_to_higher_type_when_group_b_full(self):
        """Five concurrent size-0.8 jobs: Group B type-1 budget is 4, the
        fifth must climb to a type-2 Group A machine."""
        ladder = dec_ladder(3)  # budgets: type1 -> 4, type2 -> 4
        jobs = JobSet([Job(0.8, 0, 10, name=f"j{i}") for i in range(5)])
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        assert_feasible(sched, jobs)
        types = sorted(k.type_index for k in sched.assignment.values())
        assert types == [1, 1, 1, 1, 2]

    def test_concurrency_budget_respected(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(150, rng, max_size=ladder.capacity(3))
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        for i in (1, 2):  # type m = 3 is unbounded
            budget = group_budget(ladder.rate(i + 1) / ladder.rate(i))
            peak = busy_machine_profile(sched, type_index=i).max()
            # groups A and B each get `budget`
            assert peak <= 2 * budget + 1e-9

    def test_theorem2_bound_on_mu_workloads(self, rng):
        ladder = dec_ladder(3)
        for mu in (1.0, 4.0):
            jobs = bounded_mu_workload(80, rng, mu=mu, max_size=ladder.capacity(3))
            sched = run_online(jobs, DecOnlineScheduler(ladder))
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            assert sched.cost() <= 32.0 * (jobs.mu + 1.0) * lb + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=25, max_size=8.0), dec_ladder_strategy(max_m=4))
    def test_property_feasible(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        assert_feasible(sched, jobs)

    @settings(deadline=None, max_examples=20)
    @given(jobset_strategy(max_jobs=20, max_size=8.0), dec_ladder_strategy(max_m=3))
    def test_property_theorem2_bound(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        lb = lower_bound(jobs, ladder).value
        if lb > 0:
            assert sched.cost() <= 32.0 * (jobs.mu + 1.0) * lb * (1 + 1e-9)
