"""Unit and property tests for the placement engine (chart, greedy, strips)."""

import pytest
from hypothesis import given, settings

from repro import Job, JobSet, place_jobs
from repro.placement.chart import Band, DemandChart, Placement
from repro.placement.greedy import GreedyDualPlacer
from repro.placement.strips import band_strip_top, split_into_strips, two_color
from tests.conftest import jobset_strategy


class TestBand:
    def test_geometry(self):
        band = Band(Job(2.0, 0, 5), altitude=1.0)
        assert band.top == 3.0
        assert band.crosses(2.0)
        assert not band.crosses(1.0)  # bottom edge is not a crossing
        assert not band.crosses(3.0)  # top edge is not a crossing

    def test_altitude_overlap(self):
        a = Band(Job(2.0, 0, 5), altitude=0.0)
        b = Band(Job(2.0, 0, 5), altitude=2.0)  # touching, half-open
        c = Band(Job(2.0, 0, 5), altitude=1.5)
        assert not a.altitude_overlap(b)
        assert a.altitude_overlap(c)


class TestDemandChart:
    def test_height_matches_jobset(self, small_jobs):
        chart = DemandChart(small_jobs)
        for t in (0.5, 2.5, 5.5, 8.0):
            assert chart.height_at(t) == pytest.approx(small_jobs.demand_at(t))

    def test_min_height_on(self, small_jobs):
        chart = DemandChart(small_jobs)
        job = small_jobs.jobs[0]  # a: [0, 4)
        lo = chart.min_height_on(job.interval)
        assert lo == pytest.approx(0.5)  # only a active on [0, 1)


class TestGreedyPlacement:
    def test_single_job_at_zero(self):
        p = place_jobs(JobSet([Job(2.0, 0, 5)]))
        assert p.bands[0].altitude == 0.0

    def test_stacking_two_concurrent(self):
        p = place_jobs(JobSet([Job(1.0, 0, 5, name="x"), Job(1.0, 1, 4, name="y")]))
        alts = sorted(b.altitude for b in p.bands)
        # second job may share altitude (2-overlap allowed) or stack
        assert alts[0] == 0.0

    def test_requires_arrival_order(self):
        jobs = JobSet([Job(1, 0, 5), Job(1, 1, 4)])
        chart = DemandChart(jobs)
        placer = GreedyDualPlacer(chart)
        for job in jobs:  # JobSet iterates in arrival order
            placer.place(job)
        assert len(placer.result().bands) == 2

    def test_placement_covers_exactly_chart_jobs(self, small_jobs):
        chart = DemandChart(small_jobs)
        placer = GreedyDualPlacer(chart)
        jobs = list(small_jobs)
        for job in jobs[:-1]:
            placer.place(job)
        with pytest.raises(ValueError):
            Placement(chart, list(placer.bands), [])

    def test_reuses_departed_altitude(self):
        # b departs before c arrives: c can sit at b's altitude
        a = Job(1.0, 0, 10, name="a")
        b = Job(1.0, 0, 3, name="b")
        c = Job(1.0, 5, 9, name="c")
        p = place_jobs(JobSet([a, b, c]))
        band_c = p.band_of(c)
        assert band_c.altitude == 0.0 or band_c.altitude == 1.0

    @settings(deadline=None, max_examples=60)
    @given(jobset_strategy(max_jobs=30))
    def test_property_two_overlap_invariant(self, jobs):
        p = place_jobs(jobs)
        assert p.max_overlap() <= 2

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=20))
    def test_property_every_job_has_band(self, jobs):
        p = place_jobs(jobs)
        assert {b.job.uid for b in p.bands} == {j.uid for j in jobs}
        assert all(b.altitude >= 0 for b in p.bands)

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=20))
    def test_property_overflow_rare_and_tracked(self, jobs):
        p = place_jobs(jobs)
        violations = p.containment_violations()
        # every violating band's job must be in the overflow list OR within
        # float tolerance of containment (the soft invariant is *reported*)
        overflow_uids = {j.uid for j in p.overflowed}
        for band, excess in violations:
            assert band.job.uid in overflow_uids or excess < 1e-6


class TestStrips:
    def test_band_strip_top(self):
        assert band_strip_top(Band(Job(1.0, 0, 1), 0.0), h=1.0) == 1
        assert band_strip_top(Band(Job(1.5, 0, 1), 0.0), h=1.0) == 2
        assert band_strip_top(Band(Job(1.0, 0, 1), 0.5), h=1.0) == 2

    def test_inside_vs_crossing(self):
        # two bands may share altitude 0 (2-overlap is allowed); the third is
        # pushed above their common region and must cross boundary 1
        jobs = JobSet(
            [
                Job(0.8, 0, 2, name="in"),
                Job(1.0, 0, 2, name="in2"),
                Job(1.0, 0, 2, name="cross"),
            ]
        )
        p = place_jobs(jobs)
        strips = split_into_strips(p, height=1.0)
        inside_names = {b.job.name for bands in strips.inside.values() for b in bands}
        crossing_names = {
            b.job.name for bands in strips.crossing.values() for b in bands
        }
        assert "in" in inside_names
        assert "cross" in crossing_names
        # the crossing band is charged to boundary 1 (altitude 1.0)
        assert 1 in strips.crossing

    def test_band_on_boundary_start_is_inside(self):
        # a band starting exactly at a boundary does not cross it
        band = Band(Job(1.0, 0, 1), altitude=1.0)
        strips = split_into_strips(
            Placement(DemandChart(JobSet([band.job])), [band], []), height=1.0
        )
        assert 1 in strips.inside
        assert not strips.crossing

    def test_invalid_height(self, small_jobs):
        p = place_jobs(small_jobs)
        with pytest.raises(ValueError):
            split_into_strips(p, height=0.0)

    def test_bands_touching_bottom(self):
        jobs = JobSet(
            [
                Job(0.5, 0, 2, name="low"),
                Job(0.5, 0, 2, name="low2"),
                Job(0.5, 0, 2, name="mid"),
                Job(0.5, 0, 2, name="mid2"),
                Job(0.5, 0, 2, name="high"),
            ]
        )
        p = place_jobs(jobs)
        strips = split_into_strips(p, height=0.5)
        inside, crossing = strips.bands_touching_bottom(2)
        touched = {b.job.name for _, b in inside} | {b.job.name for _, b in crossing}
        # bottom two strips cover altitudes [0, 1): should catch >= 2 jobs
        assert len(touched) >= 2

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=25, max_size=4.0))
    def test_property_strips_partition_all_bands(self, jobs):
        p = place_jobs(jobs)
        strips = split_into_strips(p, height=2.0)
        inside_uids = [b.job.uid for bands in strips.inside.values() for b in bands]
        crossing_uids = [
            b.job.uid for bands in strips.crossing.values() for b in bands
        ]
        all_uids = inside_uids + crossing_uids
        assert sorted(all_uids) == sorted(j.uid for j in jobs)

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=25, max_size=4.0))
    def test_property_inside_bands_within_strip(self, jobs):
        h = 2.0
        p = place_jobs(jobs)
        strips = split_into_strips(p, height=h)
        for k, bands in strips.inside.items():
            for band in bands:
                assert band.altitude >= k * h - 1e-6
                assert band.top <= (k + 1) * h + 1e-6

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=25, max_size=4.0))
    def test_property_crossing_bands_contain_their_boundary(self, jobs):
        h = 2.0
        p = place_jobs(jobs)
        strips = split_into_strips(p, height=h)
        for k, bands in strips.crossing.items():
            for band in bands:
                assert band.altitude < k * h + 1e-6
                assert band.top > k * h - 1e-6


class TestTwoColor:
    def test_alternating(self):
        bands = [
            Band(Job(1.0, 0, 4, name="a"), 0.5),
            Band(Job(1.0, 1, 5, name="b"), 0.5),
            Band(Job(1.0, 4.5, 7, name="c"), 0.5),
        ]
        colors = two_color(bands)
        assert colors[bands[0].job] != colors[bands[1].job]
        # c starts after a departs; any color is fine but must be 0/1
        assert set(colors.values()) <= {0, 1}

    def test_three_concurrent_raises(self):
        bands = [Band(Job(1.0, 0, 10, name=str(i)), 0.5) for i in range(3)]
        with pytest.raises(AssertionError):
            two_color(bands)

    def test_machines_never_double_booked(self):
        import numpy as np

        rng = np.random.default_rng(3)
        # build a random set with pairwise overlap <= 2 by construction:
        # jobs on two "tracks"
        bands = []
        for track in range(2):
            t = 0.0
            for _ in range(10):
                d = rng.uniform(1, 3)
                bands.append(Band(Job(1.0, t, t + d), 0.5))
                t += d + rng.uniform(0.0, 1.0)
        colors = two_color(bands)
        for color in (0, 1):
            chosen = [b for b in bands if colors[b.job] == color]
            chosen.sort(key=lambda b: b.job.arrival)
            for x, y in zip(chosen[:-1], chosen[1:]):
                assert x.job.departure <= y.job.arrival + 1e-9 or not x.interval.overlaps(
                    y.interval
                )


class TestDoublyCoveredStrategies:
    """The pairwise and sweep conflict algorithms must agree exactly."""

    @settings(deadline=None, max_examples=60)
    @given(jobset_strategy(min_jobs=3, max_jobs=40))
    def test_property_pairwise_equals_sweep(self, jobs):
        from repro.placement.greedy import (
            _doubly_covered_pairwise,
            _doubly_covered_sweep,
        )

        job_list = list(jobs)
        probe = job_list[-1]
        bands = [
            Band(j, altitude=float((i * 7) % 5) * 0.6)
            for i, j in enumerate(job_list[:-1])
        ]
        coexisting = [b for b in bands if b.interval.overlaps(probe.interval)]
        assert _doubly_covered_pairwise(coexisting, probe) == _doubly_covered_sweep(
            coexisting, probe
        )

    def test_burst_performance_path_used(self, rng):
        """Dense bursts route through the sweep path and stay fast."""
        import time

        from repro import bursty_workload, dec_ladder, dec_offline

        ladder = dec_ladder(3)
        jobs = bursty_workload(250, rng, bursts=2, max_size=ladder.capacity(3))
        start = time.perf_counter()
        sched = dec_offline(jobs, ladder)
        assert time.perf_counter() - start < 10.0  # ~0.2 s typical, 30x margin
        from repro.schedule.validate import assert_feasible

        assert_feasible(sched, jobs)
