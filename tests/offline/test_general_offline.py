"""Unit and property tests for GEN-OFFLINE (Section V)."""

import math

import pytest
from hypothesis import given, settings

from repro import (
    Job,
    JobSet,
    general_offline,
    inc_offline,
    lower_bound,
    paper_fig2_ladder,
    random_general_ladder,
    uniform_workload,
)
from repro.offline.general_offline import node_strip_budget
from repro.schedule.validate import assert_feasible
from tests.conftest import any_ladder_strategy, jobset_strategy


class TestNodeStripBudget:
    def test_formula(self, dec3):
        # parent rate 2, node rate 1, one sibling: ceil(2/1) = 2
        assert node_strip_budget(dec3, 1, 2, 1) == 2

    def test_sibling_discount(self):
        ladder = paper_fig2_ladder()
        b1 = node_strip_budget(ladder, 1, 3, 1)
        b2 = node_strip_budget(ladder, 1, 3, 4)
        assert b2 <= b1  # more siblings -> smaller per-child budget


class TestGeneralOffline:
    def test_on_inc_ladder_equals_inc_offline_cost(self, inc3, rng):
        """On an INC ladder every forest node is a root, so GEN-OFFLINE
        degenerates to exactly the partitioning strategy."""
        jobs = uniform_workload(50, rng, max_size=inc3.capacity(3))
        a = general_offline(jobs, inc3)
        b = inc_offline(jobs, inc3)
        assert a.cost() == pytest.approx(b.cost(), rel=1e-12)
        # identical type usage
        assert {
            (j.uid, k.type_index) for j, k in a.assignment.items()
        } == {(j.uid, k.type_index) for j, k in b.assignment.items()}

    def test_on_dec_ladder_feasible(self, dec3, rng):
        jobs = uniform_workload(50, rng, max_size=dec3.capacity(3))
        sched = general_offline(jobs, dec3)
        assert_feasible(sched, jobs)

    def test_fig2_ladder(self, rng):
        ladder = paper_fig2_ladder()
        jobs = uniform_workload(60, rng, max_size=ladder.capacity(8))
        sched = general_offline(jobs, ladder)
        assert_feasible(sched, jobs)

    def test_oversize_guard(self, dec3):
        with pytest.raises(ValueError):
            general_offline(JobSet([Job(100.0, 0, 1)]), dec3)

    def test_empty(self, dec3):
        assert general_offline(JobSet(), dec3).cost() == 0.0

    def test_job_types_follow_processing_path(self, rng):
        """Every job runs on a type along its class's path to the root."""
        ladder = paper_fig2_ladder()
        forest = ladder.forest()
        jobs = uniform_workload(80, rng, max_size=ladder.capacity(8))
        sched = general_offline(jobs, ladder)
        for job, key in sched.assignment.items():
            c = job.size_class(ladder.capacities)
            assert key.type_index in forest.path_to_root(c)

    def test_sqrt_m_shape_on_random_ladders(self, rng):
        for m in (2, 4, 8):
            ladder = random_general_ladder(m, rng)
            jobs = uniform_workload(60, rng, max_size=ladder.capacity(m))
            sched = general_offline(jobs, ladder)
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            # conjectured O(sqrt m); generous constant for small instances
            assert sched.cost() <= 14.0 * math.sqrt(m) * lb + 1e-9

    @settings(deadline=None, max_examples=25)
    @given(jobset_strategy(max_jobs=18, max_size=8.0), any_ladder_strategy(max_m=5))
    def test_property_feasible_on_any_ladder(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = general_offline(jobs, ladder)
        assert_feasible(sched, jobs)
