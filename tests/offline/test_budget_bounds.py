"""Machine-concurrency accounting of the iterative offline algorithms.

Theorem 1's counting argument bounds the number of type-``i`` machines that
DEC-OFFLINE keeps busy at any instant; GEN-OFFLINE inherits the analogous
per-node bound from its strip budget.  These tests check the counts on
random workloads — they are the quantities the approximation proofs sum up,
so validating them validates the proofs' premises, not just their
conclusions.
"""

import numpy as np
import pytest

from repro import dec_ladder, dec_offline, general_offline, paper_fig2_ladder, uniform_workload
from repro.analysis.metrics import busy_machine_profile
from repro.offline.general_offline import node_strip_budget


@pytest.fixture
def rng():
    return np.random.default_rng(2718)


class TestDecOfflineCounting:
    def test_per_iteration_machine_bound(self, rng):
        """<= 6 (r_{i+1}/r_i - 1) type-i machines busy at any time, i < m."""
        ladder = dec_ladder(4)
        for trial in range(3):
            jobs = uniform_workload(120, rng, max_size=ladder.capacity(4))
            sched = dec_offline(jobs, ladder)
            for i in range(1, 4):
                ratio = ladder.rate(i + 1) / ladder.rate(i)
                peak = busy_machine_profile(sched, type_index=i).max()
                assert peak <= 6 * (ratio - 1) + 1e-9

    def test_total_cost_rate_bound_when_top_type_used(self, rng):
        """When type-m machines host jobs at time t, the non-top types
        contribute at most 6 * r_m cost rate (the telescoping sum in the
        Theorem-1 proof)."""
        ladder = dec_ladder(3)
        jobs = uniform_workload(150, rng, max_size=ladder.capacity(3))
        sched = dec_offline(jobs, ladder)
        profiles = {
            i: busy_machine_profile(sched, type_index=i) for i in (1, 2, 3)
        }
        for seg in jobs.segments():
            mid = (seg.left + seg.right) / 2
            low_rate = sum(
                float(profiles[i](mid)) * ladder.rate(i) for i in (1, 2)
            )
            assert low_rate <= 6 * ladder.rate(3) + 1e-9


class TestGenOfflineCounting:
    def test_non_root_node_machine_bound(self, rng):
        """A non-root node j keeps at most 3 * B_j type-j machines busy,
        where B_j is its strip budget (strip machines + 2 per boundary)."""
        ladder = paper_fig2_ladder()
        forest = ladder.forest()
        jobs = uniform_workload(150, rng, max_size=ladder.capacity(8))
        sched = general_offline(jobs, ladder)
        for j in range(1, ladder.m + 1):
            parent = forest.parent[j]
            if parent is None:
                continue
            budget = node_strip_budget(ladder, j, parent, forest.num_children(parent))
            peak = busy_machine_profile(sched, type_index=j).max()
            assert peak <= 3 * budget + 1e-9
