"""Tests for the uniform-size (bounded-parallelism) special case."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Job, JobSet, single_type_ladder
from repro.offline.uniform import color_tracks, max_concurrency, uniform_track_schedule
from repro.schedule.validate import assert_feasible


def uniform_jobs(n, rng, horizon=50.0):
    arrivals = rng.uniform(0, horizon, size=n)
    durations = rng.uniform(0.5, 6.0, size=n)
    return JobSet(
        Job(1.0, float(a), float(a + d)) for a, d in zip(arrivals, durations)
    )


class TestMaxConcurrency:
    def test_disjoint(self):
        jobs = JobSet([Job(1, 0, 1), Job(1, 2, 3)])
        assert max_concurrency(jobs) == 1

    def test_nested(self):
        jobs = JobSet([Job(1, 0, 10), Job(1, 2, 8), Job(1, 4, 6)])
        assert max_concurrency(jobs) == 3

    def test_touching_not_concurrent(self):
        jobs = JobSet([Job(1, 0, 2), Job(1, 2, 4)])
        assert max_concurrency(jobs) == 1

    def test_empty(self):
        assert max_concurrency(JobSet()) == 0


class TestColorTracks:
    def test_no_track_conflicts(self):
        rng = np.random.default_rng(3)
        jobs = uniform_jobs(60, rng)
        colors = color_tracks(jobs)
        by_track = {}
        for job, track in colors.items():
            by_track.setdefault(track, []).append(job)
        for members in by_track.values():
            assert max_concurrency(JobSet(members)) <= 1

    def test_optimal_track_count(self):
        rng = np.random.default_rng(4)
        jobs = uniform_jobs(80, rng)
        colors = color_tracks(jobs)
        assert len(set(colors.values())) == max_concurrency(jobs)

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(
            st.tuples(st.floats(0, 40), st.floats(0.1, 10)),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_coloring_valid_and_optimal(self, raw):
        jobs = JobSet(Job(1.0, a, a + d) for a, d in raw)
        colors = color_tracks(jobs)
        # validity
        for a in jobs:
            for b in jobs:
                if a.uid < b.uid and a.interval.overlaps(b.interval):
                    assert colors[a] != colors[b]
        # optimality (chi == omega for interval graphs)
        assert len(set(colors.values())) == max_concurrency(jobs)


class TestTrackSchedule:
    def test_feasible_and_packs(self):
        rng = np.random.default_rng(5)
        jobs = uniform_jobs(60, rng)
        ladder = single_type_ladder(capacity=4.0)
        sched = uniform_track_schedule(jobs, ladder, slots=4)
        assert_feasible(sched, jobs)
        # at most ceil(omega / slots) machines exist in total... per time the
        # bound is on tracks; check global machine count
        import math

        assert len(sched.machines()) == math.ceil(max_concurrency(jobs) / 4)

    def test_rejects_nonuniform(self):
        jobs = JobSet([Job(1.0, 0, 1), Job(2.0, 0, 1)])
        with pytest.raises(ValueError, match="uniform"):
            uniform_track_schedule(jobs, single_type_ladder(capacity=4.0), 2)

    def test_rejects_capacity_mismatch(self):
        jobs = JobSet([Job(1.0, 0, 1)])
        with pytest.raises(ValueError, match="cannot hold"):
            uniform_track_schedule(
                jobs, single_type_ladder(capacity=3.0), slots=4, type_index=1
            )

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            uniform_track_schedule(JobSet(), single_type_ladder(), 0)

    def test_empty(self):
        sched = uniform_track_schedule(JobSet(), single_type_ladder(), 2)
        assert sched.cost() == 0.0
