"""Unit and property tests for DEC-OFFLINE (Theorem 1)."""

import math

import pytest
from hypothesis import given, settings

from repro import (
    Job,
    JobSet,
    dec_ladder,
    dec_offline,
    inc_ladder,
    lower_bound,
    paper_fig2_ladder,
    uniform_workload,
)
from repro.offline.dec_offline import strip_budget
from repro.analysis.metrics import busy_machine_profile
from repro.schedule.validate import assert_feasible
from tests.conftest import dec_ladder_strategy, jobset_strategy


class TestStripBudget:
    def test_power_of_two_exact(self):
        assert strip_budget(2.0) == 2  # 2 * (2 - 1)
        assert strip_budget(4.0) == 6
        assert strip_budget(8.0) == 14

    def test_non_integer_rounds_up(self):
        assert strip_budget(1.7) == 2  # 2 * 0.7 = 1.4 -> 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            strip_budget(1.0)

    def test_factor_knob(self):
        assert strip_budget(2.0, factor=4.0) == 4


class TestDecOffline:
    def test_regime_guard(self, inc3, small_jobs):
        with pytest.raises(ValueError, match="not BSHM-DEC"):
            dec_offline(small_jobs, inc3)
        # explicit override allowed
        sched = dec_offline(small_jobs, inc3, require_regime=False)
        assert_feasible(sched, small_jobs)

    def test_oversize_guard(self, dec3):
        with pytest.raises(ValueError, match="largest machine"):
            dec_offline(JobSet([Job(100.0, 0, 1)]), dec3)

    def test_empty_instance(self, dec3):
        sched = dec_offline(JobSet(), dec3)
        assert sched.cost() == 0.0

    def test_single_type_reduces_to_dual_coloring(self, small_jobs):
        from repro import single_type_ladder

        ladder = single_type_ladder(capacity=4.0)
        sched = dec_offline(small_jobs, ladder)
        assert_feasible(sched, small_jobs)
        assert all(k.type_index == 1 for k in sched.machines())

    def test_small_jobs_prefer_small_types_when_load_low(self, dec3):
        # one tiny long job: DEC-OFFLINE's first iteration catches it on type 1
        jobs = JobSet([Job(0.2, 0, 10)])
        sched = dec_offline(jobs, dec3)
        assert sched.machine_of(jobs.jobs[0]).type_index == 1
        assert sched.cost() == pytest.approx(10.0)  # rate 1

    def test_big_job_lands_on_required_type(self, dec3):
        jobs = JobSet([Job(5.0, 0, 2)])
        sched = dec_offline(jobs, dec3)
        assert sched.machine_of(jobs.jobs[0]).type_index == 3

    def test_machine_concurrency_bound_per_iteration(self, dec3, rng):
        """At any time, iteration i uses at most 6 (r_{i+1}/r_i - 1) type-i
        machines (i < m) — the counting in Theorem 1's proof."""
        jobs = uniform_workload(120, rng, max_size=dec3.capacity(3))
        sched = dec_offline(jobs, dec3)
        for i in (1, 2):
            ratio = dec3.rate(i + 1) / dec3.rate(i)
            cap = 6 * (ratio - 1)
            peak = busy_machine_profile(sched, type_index=i).max()
            assert peak <= cap + 1e-9

    def test_theorem1_ratio_on_random_workloads(self, rng):
        ladder = dec_ladder(3)
        for trial in range(3):
            jobs = uniform_workload(80, rng, max_size=ladder.capacity(3))
            sched = dec_offline(jobs, ladder)
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            assert sched.cost() <= 14.0 * lb + 1e-9

    def test_budget_factor_ablation_changes_schedule(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(60, rng, max_size=ladder.capacity(3))
        a = dec_offline(jobs, ladder, budget_factor=1.0)
        b = dec_offline(jobs, ladder, budget_factor=4.0)
        assert_feasible(a, jobs)
        assert_feasible(b, jobs)

    def test_strip_divisor_validation(self, dec3, small_jobs):
        with pytest.raises(ValueError):
            dec_offline(small_jobs, dec3, strip_divisor=1.0)

    def test_strip_divisor_four_still_feasible(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(60, rng, max_size=ladder.capacity(3))
        sched = dec_offline(jobs, ladder, strip_divisor=4.0)
        assert_feasible(sched, jobs)

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=20, max_size=8.0), dec_ladder_strategy(max_m=4))
    def test_property_feasible_and_bounded(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = dec_offline(jobs, ladder)
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        if lb > 0:
            assert sched.cost() <= 14.0 * lb * (1 + 1e-9)

    @settings(deadline=None, max_examples=20)
    @given(jobset_strategy(max_jobs=15, max_size=8.0), dec_ladder_strategy(max_m=4))
    def test_property_every_job_on_fitting_type(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = dec_offline(jobs, ladder)
        for job, key in sched.assignment.items():
            assert job.size <= ladder.capacity(key.type_index) + 1e-9
