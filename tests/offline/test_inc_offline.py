"""Unit and property tests for INC-OFFLINE (Section IV)."""

import pytest
from hypothesis import given, settings

from repro import (
    Job,
    JobSet,
    inc_ladder,
    inc_offline,
    lower_bound,
    uniform_workload,
)
from repro.schedule.validate import assert_feasible
from tests.conftest import inc_ladder_strategy, jobset_strategy


class TestIncOffline:
    def test_regime_guard(self, dec3, small_jobs):
        with pytest.raises(ValueError, match="not BSHM-INC"):
            inc_offline(small_jobs, dec3)
        sched = inc_offline(small_jobs, dec3, require_regime=False)
        assert_feasible(sched, small_jobs)

    def test_constant_amortized_accepted(self, small_jobs):
        from repro import Ladder

        lad = Ladder.from_pairs([(1, 1), (2, 2), (4, 4)])
        sched = inc_offline(small_jobs, lad)
        assert_feasible(sched, small_jobs)

    def test_classes_never_share_machines(self, inc3, rng):
        jobs = uniform_workload(60, rng, max_size=inc3.capacity(3))
        sched = inc_offline(jobs, inc3)
        for job, key in sched.assignment.items():
            # each job is on exactly the machine type of its size class
            assert job.size_class(inc3.capacities) == key.type_index

    def test_empty(self, inc3):
        assert inc_offline(JobSet(), inc3).cost() == 0.0

    def test_oversize_guard(self, inc3):
        with pytest.raises(ValueError):
            inc_offline(JobSet([Job(100.0, 0, 1)]), inc3)

    def test_section4_ratio_on_random_workloads(self, rng):
        ladder = inc_ladder(4)
        for _ in range(3):
            jobs = uniform_workload(80, rng, max_size=ladder.capacity(4))
            sched = inc_offline(jobs, ladder)
            assert_feasible(sched, jobs)
            lb = lower_bound(jobs, ladder).value
            assert sched.cost() <= 9.0 * lb + 1e-9

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=20, max_size=4.0), inc_ladder_strategy(max_m=4))
    def test_property_feasible_and_bounded(self, jobs, ladder):
        if not ladder.fits(jobs.max_size):
            return
        sched = inc_offline(jobs, ladder)
        assert_feasible(sched, jobs)
        lb = lower_bound(jobs, ladder).value
        if lb > 0:
            assert sched.cost() <= 9.0 * lb * (1 + 1e-9)
