"""Unit tests for the homogeneous Dual-Coloring subroutine."""

import pytest
from hypothesis import given, settings

from repro import Job, JobSet, dual_coloring_schedule, single_type_ladder
from repro.offline.dual_coloring import dual_coloring_assign
from repro.analysis.metrics import busy_machine_profile
from repro.schedule.schedule import Schedule
from repro.schedule.validate import assert_feasible
from tests.conftest import jobset_strategy


class TestDualColoringAssign:
    def test_empty(self):
        assert dual_coloring_assign(JobSet(), 4.0, 1) == {}

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            dual_coloring_assign(JobSet([Job(5.0, 0, 1)]), 4.0, 1)

    def test_strip_divisor_below_two_rejected(self):
        with pytest.raises(ValueError):
            dual_coloring_assign(JobSet([Job(1.0, 0, 1)]), 4.0, 1, strip_divisor=1.5)

    def test_tag_prefix_namespacing(self):
        jobs = JobSet([Job(1.0, 0, 2)])
        a = dual_coloring_assign(jobs, 4.0, 1, tag_prefix=("x",))
        key = next(iter(a.values()))
        assert key.tag[0] == "x"

    def test_single_job_single_machine(self):
        jobs = JobSet([Job(1.0, 0, 2)])
        a = dual_coloring_assign(jobs, 4.0, 1)
        assert len(set(a.values())) == 1


class TestDualColoringSchedule:
    def test_feasible_on_fixture(self, small_jobs):
        ladder = single_type_ladder(capacity=4.0)
        sched = dual_coloring_schedule(small_jobs, ladder)
        assert_feasible(sched, small_jobs)

    def test_defaults_to_smallest_fitting_type(self, dec3, small_jobs):
        sched = dual_coloring_schedule(small_jobs, dec3)
        # max size 2.0 -> smallest fitting type is 2 (capacity 3)
        assert all(k.type_index == 2 for k in sched.machines())

    @settings(deadline=None, max_examples=40)
    @given(jobset_strategy(max_jobs=25, max_size=4.0))
    def test_property_always_feasible(self, jobs):
        ladder = single_type_ladder(capacity=4.0)
        sched = dual_coloring_schedule(jobs, ladder, type_index=1)
        assert_feasible(sched, jobs)

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=25, max_size=4.0))
    def test_property_machine_count_bound_of_ref13(self, jobs):
        """[13]: at most 4*ceil(s(J,t)/g) machines at any time.

        Our greedy placer keeps containment only softly, so we assert the
        bound with one extra machine of slack per overflowed job — in
        practice the bound itself almost always holds (checked exactly when
        there is no overflow).
        """
        import math

        g = 4.0
        ladder = single_type_ladder(capacity=g)
        from repro import place_jobs

        placement = place_jobs(jobs)
        sched = dual_coloring_schedule(jobs, ladder, type_index=1)
        profile = busy_machine_profile(sched)
        demand = jobs.demand_profile()
        slack = len(placement.overflowed)
        for seg in jobs.segments():
            mid = (seg.left + seg.right) / 2
            used = float(profile(mid))
            allowed = 4 * math.ceil(float(demand(mid)) / g - 1e-9) + slack
            assert used <= allowed + 1e-9
