"""Unit and cross-check tests for the exact solvers (MILP + brute force)."""

import pytest
from hypothesis import given, settings

from repro import (
    Job,
    JobSet,
    brute_force_optimal,
    dec_ladder,
    lower_bound,
    solve_optimal,
)
from repro.schedule.validate import assert_feasible
from tests.conftest import jobset_strategy


class TestMilp:
    def test_empty(self, dec3):
        res = solve_optimal(JobSet(), dec3)
        assert res.cost == 0.0

    def test_single_job(self, dec3):
        jobs = JobSet([Job(0.5, 0, 4)])
        res = solve_optimal(jobs, dec3)
        assert res.cost == pytest.approx(4.0)  # type 1, rate 1, 4 time units
        assert_feasible(res.schedule, jobs)

    def test_schedule_cost_matches_objective(self, dec3):
        jobs = JobSet([Job(0.5, 0, 4), Job(0.7, 1, 5), Job(2.0, 2, 6)])
        res = solve_optimal(jobs, dec3)
        assert res.schedule.cost() == pytest.approx(res.cost, rel=1e-6)

    def test_sharing_beats_solo(self, dec3):
        # two tiny overlapping jobs: optimal shares one type-1 machine
        jobs = JobSet([Job(0.4, 0, 4), Job(0.4, 0, 4)])
        res = solve_optimal(jobs, dec3)
        assert res.cost == pytest.approx(4.0)

    def test_too_many_jobs_rejected(self, dec3, rng):
        from repro import uniform_workload

        jobs = uniform_workload(20, rng, max_size=1.0)
        with pytest.raises(ValueError):
            solve_optimal(jobs, dec3)

    def test_dec_economies_of_scale(self, dec3):
        # nine 1.0-jobs overlapping: 9 type-1 (cost 9/unit time) vs
        # 1 type-3 (cost 4/unit time): MILP must find the type-3 bundling
        jobs = JobSet([Job(1.0, 0, 2, name=f"j{i}") for i in range(9)])
        res = solve_optimal(jobs, dec3)
        assert res.cost == pytest.approx(8.0)


class TestBruteForce:
    def test_matches_milp_small(self, dec3):
        jobs = JobSet([Job(0.5, 0, 4), Job(0.7, 1, 5), Job(2.0, 2, 6)])
        assert brute_force_optimal(jobs, dec3).cost() == pytest.approx(
            solve_optimal(jobs, dec3).cost, rel=1e-9
        )

    def test_limit(self, dec3, rng):
        from repro import uniform_workload

        jobs = uniform_workload(9, rng, max_size=1.0)
        with pytest.raises(ValueError):
            brute_force_optimal(jobs, dec3, max_jobs=8)

    def test_empty(self, dec3):
        assert brute_force_optimal(JobSet(), dec3).cost() == 0.0


@settings(deadline=None, max_examples=15)
@given(jobset_strategy(min_jobs=1, max_jobs=5, max_size=8.0))
def test_property_milp_equals_bruteforce_and_dominates_lb(jobs):
    ladder = dec_ladder(3)  # capacity 9 fits sizes <= 8
    milp = solve_optimal(jobs, ladder)
    brute = brute_force_optimal(jobs, ladder)
    assert_feasible(milp.schedule, jobs)
    assert_feasible(brute, jobs)
    assert milp.cost == pytest.approx(brute.cost(), rel=1e-6)
    assert lower_bound(jobs, ladder).value <= milp.cost * (1 + 1e-6) + 1e-9
