"""Tests for the LP relaxation bound."""

import pytest
from hypothesis import given, settings

from repro import Job, JobSet, dec_ladder, lower_bound, solve_optimal
from repro.exact.lp_relax import lp_relaxation_bound
from tests.conftest import jobset_strategy


class TestLpRelaxation:
    def test_empty(self, dec3):
        assert lp_relaxation_bound(JobSet(), dec3) == 0.0

    def test_single_job_tight(self, dec3):
        jobs = JobSet([Job(0.5, 0, 4)])
        assert lp_relaxation_bound(jobs, dec3) == pytest.approx(4.0)

    def test_below_milp_optimum(self, dec3, rng):
        from repro import uniform_workload

        jobs = uniform_workload(6, rng, max_size=dec3.capacity(3))
        lp = lp_relaxation_bound(jobs, dec3)
        opt = solve_optimal(jobs, dec3).cost
        assert lp <= opt + 1e-6 * max(1.0, opt)

    def test_size_limit(self, dec3, rng):
        from repro import uniform_workload

        jobs = uniform_workload(40, rng, max_size=1.0)
        with pytest.raises(ValueError):
            lp_relaxation_bound(jobs, dec3)

    @settings(deadline=None, max_examples=10)
    @given(jobset_strategy(min_jobs=1, max_jobs=5, max_size=8.0))
    def test_property_sandwich(self, jobs):
        """LP relaxation sits below OPT; both LB styles are valid bounds."""
        ladder = dec_ladder(3)
        lp = lp_relaxation_bound(jobs, ladder)
        opt = solve_optimal(jobs, ladder).cost
        eq1 = lower_bound(jobs, ladder).value
        assert lp <= opt * (1 + 1e-6) + 1e-9
        assert eq1 <= opt * (1 + 1e-6) + 1e-9
