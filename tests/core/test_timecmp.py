"""Tests for the tolerance-aware time comparison helpers (BSHM002)."""

from repro.core.timecmp import TIME_TOL, time_eq, time_le, time_lt, time_ne


class TestTimeCmp:
    def test_exact_equality(self):
        assert time_eq(1.0, 1.0)
        assert not time_ne(1.0, 1.0)

    def test_float_sliver_counts_as_equal(self):
        # the motivating case: 0.1 + 0.2 lands one ulp away from 0.3
        assert 0.1 + 0.2 != 0.3
        assert time_eq(0.1 + 0.2, 0.3)
        assert not time_ne(0.1 + 0.2, 0.3)

    def test_distinct_times_stay_distinct(self):
        assert time_ne(1.0, 1.0 + 10 * TIME_TOL)
        assert not time_eq(1.0, 2.0)

    def test_strict_less_than_needs_a_real_gap(self):
        assert time_lt(1.0, 2.0)
        assert not time_lt(1.0, 1.0 + TIME_TOL / 2)
        assert not time_lt(2.0, 1.0)

    def test_le_admits_equal_within_tolerance(self):
        assert time_le(1.0, 1.0 + TIME_TOL / 2)
        assert time_le(1.0, 2.0)
        assert not time_le(2.0, 1.0)

    def test_zero_tolerance_is_exact(self):
        assert not time_eq(0.1 + 0.2, 0.3, tol=0.0)
        assert time_lt(1.0, 1.0 + 1e-15, tol=0.0)
