"""Edge cases across the core substrate that the main suites don't reach."""

import numpy as np
import pytest

from repro import (
    Interval,
    IntervalSet,
    Job,
    JobSet,
    StepFunction,
    pulse,
    sum_pulses,
)


class TestStepFunctionEdges:
    def test_single_point_support_queries(self):
        f = pulse(5.0, 5.0 + 1e-9, 1.0)
        assert f.integral() == pytest.approx(1e-9)

    def test_compact_all_zero_collapses(self):
        f = StepFunction([0, 1, 2, 3], [0.0, 0.0, 0.0]).compact()
        # collapses to a single zero segment
        assert f.values.size == 1
        assert f.integral() == 0.0

    def test_compact_trims_zero_edges(self):
        f = StepFunction([0, 1, 2, 3], [0.0, 5.0, 0.0]).compact()
        assert f.support == Interval(1.0, 2.0)

    def test_add_disjoint_supports(self):
        f = pulse(0, 1, 1.0) + pulse(10, 11, 2.0)
        assert f(0.5) == 1.0
        assert f(5.0) == 0.0
        assert f(10.5) == 2.0

    def test_subtraction_to_zero(self):
        f = pulse(0, 2, 3.0) - pulse(0, 2, 3.0)
        assert f.integral() == 0.0

    def test_superlevel_at_zero_threshold(self):
        f = pulse(0, 2, 1.0)
        # >= 0 includes everything in the support
        assert f.superlevel(0.0).length >= 2.0

    def test_negative_values_allowed(self):
        f = pulse(0, 1, -2.0)
        assert f.min_on(Interval(0, 1)) == -2.0
        assert f.integral() == -2.0

    def test_scale_by_zero(self):
        f = pulse(0, 2, 3.0).scale(0.0)
        assert f.integral() == 0.0

    def test_sum_pulses_identical_pulses(self):
        f = sum_pulses([(0, 1, 1.0)] * 5)
        assert f(0.5) == 5.0

    def test_sum_pulses_cancellation_clamps_residue(self):
        # heights that nearly cancel shouldn't leave -1e-17 residues
        f = sum_pulses([(0, 2, 0.1), (0, 2, 0.2), (1, 2, -0.3 + 1e-12)])
        assert f(1.5) >= 0.0


class TestIntervalSetEdges:
    def test_many_nested_intervals(self):
        ivs = [Interval(i * 0.1, 10 - i * 0.1) for i in range(40)]
        s = IntervalSet(ivs)
        assert len(s) == 1
        assert s.length == pytest.approx(10.0)

    def test_intersect_touching_is_empty(self):
        a = IntervalSet([Interval(0, 1)])
        b = IntervalSet([Interval(1, 2)])
        assert a.intersect(b).empty

    def test_extend_zero_factor_identity(self):
        s = IntervalSet([Interval(0, 1), Interval(3, 4)])
        assert s.extend_members_right(0.0) == s

    def test_covers_empty_set(self):
        assert not IntervalSet().covers(Interval(0, 1))


class TestJobSetEdges:
    def test_jobs_with_identical_intervals(self):
        jobs = JobSet([Job(1.0, 0, 5) for _ in range(4)])
        assert jobs.peak_demand() == pytest.approx(4.0)
        assert len(jobs.segments()) == 1

    def test_instantaneous_handover_demand(self):
        # b starts exactly when a ends: demand never doubles
        jobs = JobSet([Job(1.0, 0, 5), Job(1.0, 5, 10)])
        assert jobs.peak_demand() == pytest.approx(1.0)

    def test_very_long_and_short_jobs_mu(self):
        jobs = JobSet([Job(1, 0, 1e-3), Job(1, 0, 1e3)])
        assert jobs.mu == pytest.approx(1e6)

    def test_filter_to_empty(self, small_jobs):
        assert small_jobs.filter(lambda j: False).empty

    def test_demand_profile_of_empty(self):
        assert JobSet().demand_profile().integral() == 0.0

    def test_at_least_class_boundary_size(self):
        # size exactly g_1 belongs to class 1, so it is NOT in J_{>=2}
        jobs = JobSet([Job(1.0, 0, 1)])
        assert jobs.at_least_class(2, (1.0, 3.0)).empty


class TestFloatRobustness:
    def test_tiny_sizes(self):
        from repro import dec_ladder, dec_offline
        from repro.schedule.validate import assert_feasible

        jobs = JobSet([Job(1e-8, 0, 1), Job(1e-8, 0.5, 2)])
        sched = dec_offline(jobs, dec_ladder(2))
        assert_feasible(sched, jobs)

    def test_large_times(self):
        from repro import dec_ladder, dec_offline, lower_bound
        from repro.schedule.validate import assert_feasible

        base = 1e9
        jobs = JobSet([Job(0.5, base, base + 10), Job(0.5, base + 5, base + 20)])
        ladder = dec_ladder(2)
        sched = dec_offline(jobs, ladder)
        assert_feasible(sched, jobs)
        assert sched.cost() >= lower_bound(jobs, ladder).value - 1e-6

    def test_capacity_exact_fill(self):
        from repro import single_type_ladder
        from repro.machines.fleet import IndexedPool

        pool = IndexedPool("A", 1, capacity=1.0, budget=None)
        m = pool.first_fit(1, 0.3)
        pool.first_fit(2, 0.3)
        pool.first_fit(3, 0.4)  # fills to exactly 1.0
        assert m.load == pytest.approx(1.0)
        assert not m.fits(1e-6)
