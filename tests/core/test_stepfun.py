"""Unit tests for piecewise-constant step functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import Interval, IntervalSet, StepFunction, pulse, sum_pulses


class TestConstruction:
    def test_breaks_values_shape(self):
        with pytest.raises(ValueError):
            StepFunction([0, 1], [1.0, 2.0])  # too many values
        with pytest.raises(ValueError):
            StepFunction([0, 1, 1], [1.0, 2.0])  # non-increasing breaks

    def test_zero(self):
        z = StepFunction.zero()
        assert z.integral() == 0.0
        assert z(0.5) == 0.0

    def test_from_segments_with_gap(self):
        f = StepFunction.from_segments([(0, 1, 2.0), (3, 4, 5.0)])
        assert f(0.5) == 2.0
        assert f(2.0) == 0.0
        assert f(3.5) == 5.0
        assert f.integral() == 2.0 + 5.0

    def test_from_segments_rejects_overlap(self):
        with pytest.raises(ValueError):
            StepFunction.from_segments([(0, 2, 1.0), (1, 3, 1.0)])


class TestEvaluation:
    def test_right_continuity(self):
        f = StepFunction([0.0, 1.0, 2.0], [3.0, 7.0])
        assert f(1.0) == 7.0  # value from the right
        assert f(0.0) == 3.0
        assert f(2.0) == 0.0  # outside support

    def test_outside_support_zero(self):
        f = pulse(1.0, 2.0, 5.0)
        assert f(0.0) == 0.0
        assert f(2.5) == 0.0

    def test_vector_evaluation(self):
        f = pulse(0.0, 2.0, 3.0)
        out = f(np.array([-1.0, 0.5, 1.5, 3.0]))
        assert np.allclose(out, [0.0, 3.0, 3.0, 0.0])

    def test_max_and_min_on(self):
        f = StepFunction([0, 1, 2, 3], [1.0, 5.0, 2.0])
        assert f.max() == 5.0
        assert f.min_on(Interval(1, 3)) == 2.0
        assert f.min_on(Interval(0, 3)) == 1.0
        # outside the support the function is 0
        assert f.min_on(Interval(0, 4)) == 0.0


class TestIntegration:
    def test_integral_exact(self):
        f = StepFunction([0, 2, 5], [3.0, 1.0])
        assert f.integral() == 2 * 3.0 + 3 * 1.0

    def test_integral_on_interval_set(self):
        f = StepFunction([0, 10], [2.0])
        s = IntervalSet([Interval(1, 3), Interval(5, 6)])
        assert f.integral_on(s) == 2.0 * 3.0

    def test_integral_on_partially_outside(self):
        f = pulse(0, 4, 1.0)
        s = IntervalSet([Interval(3, 10)])
        assert f.integral_on(s) == 1.0


class TestSuperlevel:
    def test_superlevel_merges_adjacent(self):
        f = StepFunction([0, 1, 2, 3, 4], [1.0, 2.0, 2.0, 0.0])
        assert f.superlevel(2.0) == IntervalSet([Interval(1, 3)])

    def test_superlevel_strict(self):
        f = StepFunction([0, 1, 2], [2.0, 3.0])
        assert f.superlevel(2.0, strict=True) == IntervalSet([Interval(1, 2)])

    def test_superlevel_empty(self):
        f = pulse(0, 1, 1.0)
        assert f.superlevel(5.0).empty


class TestAlgebra:
    def test_add(self):
        f = pulse(0, 2, 1.0) + pulse(1, 3, 2.0)
        assert f(0.5) == 1.0
        assert f(1.5) == 3.0
        assert f(2.5) == 2.0

    def test_subtract(self):
        f = pulse(0, 4, 3.0) - pulse(1, 2, 1.0)
        assert f(1.5) == 2.0
        assert f(0.5) == 3.0

    def test_maximum(self):
        f = pulse(0, 2, 1.0).maximum(pulse(1, 3, 4.0))
        assert f(0.5) == 1.0
        assert f(2.5) == 4.0

    def test_scale(self):
        assert pulse(0, 1, 2.0).scale(3.0)(0.5) == 6.0

    def test_map_requires_zero_fixed_point(self):
        f = pulse(0, 1, 2.0)
        with pytest.raises(ValueError):
            f.map(lambda v: v + 1.0)
        assert f.map(lambda v: v * 2)(0.5) == 4.0

    def test_compact_merges_equal_segments(self):
        f = StepFunction([0, 1, 2, 3], [2.0, 2.0, 2.0]).compact()
        assert f.values.size == 1

    def test_equality_modulo_compaction(self):
        a = StepFunction([0, 1, 2], [3.0, 3.0])
        b = StepFunction([0, 2], [3.0])
        assert a == b


class TestSumPulses:
    def test_basic_demand_profile(self):
        f = sum_pulses([(0, 4, 1.0), (1, 3, 2.0), (2, 6, 0.5)])
        assert f(0.5) == 1.0
        assert f(1.5) == 3.0
        assert f(2.5) == pytest.approx(3.5)
        assert f(5.0) == 0.5

    def test_empty(self):
        assert sum_pulses([]).integral() == 0.0

    def test_rejects_empty_pulse(self):
        with pytest.raises(ValueError):
            sum_pulses([(1, 1, 2.0)])

    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.1, 10), st.floats(0.1, 5)),
            min_size=1,
            max_size=25,
        )
    )
    def test_property_matches_pairwise_addition(self, raw):
        pulses = [(a, a + d, h) for a, d, h in raw]
        fast = sum_pulses(pulses)
        slow = StepFunction.zero()
        for left, right, height in pulses:
            slow = slow + pulse(left, right, height)
        mids = np.linspace(-1, 70, 200)
        assert np.allclose(fast(mids), slow(mids), atol=1e-6)

    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.1, 10), st.floats(0.1, 5)),
            min_size=1,
            max_size=25,
        )
    )
    def test_property_integral_is_total_area(self, raw):
        pulses = [(a, a + d, h) for a, d, h in raw]
        f = sum_pulses(pulses)
        expected = sum((r - l) * h for l, r, h in pulses)
        assert f.integral() == pytest.approx(expected, rel=1e-6, abs=1e-9)
