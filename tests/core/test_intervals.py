"""Unit tests for the half-open interval substrate."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import Interval, IntervalSet, union_length


class TestInterval:
    def test_endpoints_match_paper_notation(self):
        iv = Interval(1.0, 3.5)
        assert iv.minus == 1.0
        assert iv.plus == 3.5
        assert iv.length == 2.5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 2.0)
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.0, math.inf)
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_maybe_returns_none_for_empty(self):
        assert Interval.maybe(1.0, 1.0) is None
        assert Interval.maybe(0.0, 1.0) == Interval(0.0, 1.0)

    def test_half_open_contains(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)  # left endpoint included
        assert not iv.contains(2.0)  # right endpoint excluded
        assert iv.contains(1.5)
        assert not iv.contains(0.999)

    def test_overlap_is_open_at_touch(self):
        # touching half-open intervals share no point
        assert not Interval(0, 1).overlaps(Interval(1, 2))
        assert Interval(0, 1.5).overlaps(Interval(1, 2))

    def test_intersect(self):
        assert Interval(0, 3).intersect(Interval(1, 5)) == Interval(1, 3)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(2, 5))
        assert not Interval(0, 4).covers(Interval(2, 5))
        assert Interval(0, 4).covers(Interval(0, 4))

    def test_shift_and_extend(self):
        assert Interval(1, 2).shift(3.0) == Interval(4, 5)
        assert Interval(1, 2).extend_right(2.0) == Interval(1, 4)
        with pytest.raises(ValueError):
            Interval(1, 2).extend_right(-0.5)

    def test_immutable(self):
        iv = Interval(0, 1)
        with pytest.raises(AttributeError):
            iv.left = 5.0  # bshm: ignore[BSHM005]  (asserting frozenness)

    def test_ordering_and_hash(self):
        a, b = Interval(0, 1), Interval(0, 2)
        assert a < b
        assert len({a, b, Interval(0, 1)}) == 2


class TestIntervalSet:
    def test_normalization_merges_overlaps(self):
        s = IntervalSet([Interval(0, 2), Interval(1, 3), Interval(5, 6)])
        assert s.intervals == (Interval(0, 3), Interval(5, 6))

    def test_touching_intervals_merge(self):
        s = IntervalSet([Interval(0, 1), Interval(1, 2)])
        assert s.intervals == (Interval(0, 2),)

    def test_length_of_disjoint_union(self):
        s = IntervalSet([Interval(0, 1), Interval(2, 4)])
        assert s.length == 3.0

    def test_equality_is_pointset_equality(self):
        a = IntervalSet([Interval(0, 1), Interval(1, 2)])
        b = IntervalSet([Interval(0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_contains_binary_search(self):
        s = IntervalSet([Interval(0, 1), Interval(5, 7), Interval(10, 11)])
        assert s.contains(0.5)
        assert s.contains(5.0)
        assert not s.contains(7.0)  # half open
        assert not s.contains(3.0)
        assert s.contains(10.999)
        assert not s.contains(11.0)

    def test_member_containing(self):
        s = IntervalSet([Interval(0, 1), Interval(5, 7)])
        assert s.member_containing(6.0) == Interval(5, 7)
        assert s.member_containing(2.0) is None

    def test_covers_interval(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 9)])
        assert s.covers(Interval(1, 3))
        assert not s.covers(Interval(3, 7))

    def test_union(self):
        a = IntervalSet([Interval(0, 2)])
        b = IntervalSet([Interval(1, 5)])
        assert a.union(b) == IntervalSet([Interval(0, 5)])

    def test_intersect(self):
        a = IntervalSet([Interval(0, 3), Interval(4, 8)])
        b = IntervalSet([Interval(2, 6)])
        assert a.intersect(b) == IntervalSet([Interval(2, 3), Interval(4, 6)])

    def test_intersect_empty(self):
        a = IntervalSet([Interval(0, 1)])
        b = IntervalSet([Interval(2, 3)])
        assert a.intersect(b).empty

    def test_extend_members_right_theorem2_shape(self):
        # I' = [I^-, I^+ + mu * len(I)) per contiguous member
        s = IntervalSet([Interval(0, 1), Interval(10, 12)])
        extended = s.extend_members_right(2.0)
        assert extended == IntervalSet([Interval(0, 3), Interval(10, 16)])

    def test_extend_members_can_merge(self):
        s = IntervalSet([Interval(0, 4), Interval(5, 6)])
        # [0,4) doubles to [0,8), swallowing [5,7)
        assert s.extend_members_right(1.0) == IntervalSet([Interval(0, 8)])

    def test_from_pairs_drops_empty(self):
        s = IntervalSet.from_pairs([(0, 1), (2, 2), (3, 4)])
        assert len(s) == 2

    def test_empty_set(self):
        s = IntervalSet()
        assert s.empty
        assert s.length == 0.0
        assert not s.contains(0.0)

    def test_union_length_helper(self):
        assert union_length([Interval(0, 2), Interval(1, 3)]) == 3.0


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0.01, 10)).map(
            lambda p: Interval(p[0], p[0] + p[1])
        ),
        max_size=30,
    )
)
def test_property_normalized_members_disjoint_sorted(ivs):
    s = IntervalSet(ivs)
    members = s.intervals
    for a, b in zip(members[:-1], members[1:]):
        assert a.right < b.left  # strictly disjoint, not even touching


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0.01, 10)).map(
            lambda p: Interval(p[0], p[0] + p[1])
        ),
        max_size=20,
    )
)
def test_property_length_below_sum_of_parts(ivs):
    s = IntervalSet(ivs)
    assert s.length <= sum(iv.length for iv in ivs) + 1e-9
    if ivs:
        assert s.length >= max(iv.length for iv in ivs) - 1e-9


@given(
    st.lists(
        st.tuples(st.floats(0, 50), st.floats(0.01, 5)).map(
            lambda p: Interval(p[0], p[0] + p[1])
        ),
        max_size=15,
    ),
    st.floats(0, 60),
)
def test_property_membership_matches_any_member(ivs, t):
    s = IntervalSet(ivs)
    assert s.contains(t) == any(iv.contains(t) for iv in ivs)
