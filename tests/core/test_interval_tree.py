"""Tests for the static interval tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interval_tree import StaticIntervalTree


class TestConstruction:
    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            StaticIntervalTree([0.0, 1.0], [1.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            StaticIntervalTree([0.0], [1.0, 2.0])

    def test_len(self):
        tree = StaticIntervalTree([0, 2, 4], [1, 3, 5])
        assert len(tree) == 3


class TestQueries:
    def test_stab_half_open(self):
        tree = StaticIntervalTree([0.0], [2.0])
        assert tree.stab(0.0) == [0]
        assert tree.stab(1.999) == [0]
        assert tree.stab(2.0) == []

    def test_stab_multiple(self):
        tree = StaticIntervalTree([0, 1, 5], [3, 4, 6])
        assert sorted(tree.stab(2.0)) == [0, 1]
        assert tree.stab(5.5) == [2]
        assert tree.stab(4.5) == []

    def test_overlapping_window(self):
        tree = StaticIntervalTree([0, 3, 6], [2, 5, 8])
        assert sorted(tree.overlapping(1.0, 4.0)) == [0, 1]
        assert tree.overlapping(2.0, 3.0) == []  # gap between [0,2) and [3,5)
        assert sorted(tree.overlapping(0.0, 10.0)) == [0, 1, 2]

    def test_empty_window(self):
        tree = StaticIntervalTree([0], [1])
        assert tree.overlapping(0.5, 0.5) == []

    def test_indices_refer_to_original_order(self):
        # intervals provided unsorted: returned indices must be input positions
        tree = StaticIntervalTree([5, 0], [6, 1])
        assert tree.stab(5.5) == [0]
        assert tree.stab(0.5) == [1]


@settings(deadline=None, max_examples=60)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0.01, 10)),
        min_size=1,
        max_size=60,
    ),
    st.floats(-5, 115),
    st.floats(0.01, 20),
)
def test_property_matches_naive_scan(raw, lo, width):
    lefts = [a for a, _ in raw]
    rights = [a + d for a, d in raw]
    tree = StaticIntervalTree(lefts, rights)
    hi = lo + width
    naive = [
        k for k, (l, r) in enumerate(zip(lefts, rights)) if l < hi and lo < r
    ]
    assert sorted(tree.overlapping(lo, hi)) == naive
    t = lo
    naive_stab = [k for k, (l, r) in enumerate(zip(lefts, rights)) if l <= t < r]
    assert sorted(tree.stab(t)) == naive_stab
