"""Unit tests for the sweep-line event machinery."""

from hypothesis import given

from repro import EventKind, Job, JobSet, elementary_segments, event_stream
from tests.conftest import jobset_strategy


class TestEventStream:
    def test_sorted_by_time(self):
        jobs = [Job(1, 0, 5), Job(1, 2, 3), Job(1, 1, 8)]
        events = event_stream(jobs)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert len(events) == 6

    def test_departure_before_arrival_at_same_instant(self):
        # job a departs at t=2, job b arrives at t=2: depart must come first
        a = Job(1, 0, 2, name="a")
        b = Job(1, 2, 4, name="b")
        events = event_stream([a, b])
        at_two = [e for e in events if e.time == 2.0]
        assert at_two[0].kind is EventKind.DEPART
        assert at_two[0].job is a
        assert at_two[1].kind is EventKind.ARRIVE
        assert at_two[1].job is b

    def test_tie_broken_by_uid(self):
        a = Job(1, 0, 5)
        b = Job(1, 0, 6)
        events = event_stream([b, a])
        arrivals = [e.job for e in events if e.kind is EventKind.ARRIVE]
        assert arrivals == sorted(arrivals, key=lambda j: j.uid)


class TestElementarySegments:
    def test_empty(self):
        assert elementary_segments([]) == []

    def test_single_job(self):
        segs = elementary_segments([Job(1, 2, 5)])
        assert len(segs) == 1
        assert segs[0].left == 2 and segs[0].right == 5

    def test_gap_between_jobs_omitted(self):
        segs = elementary_segments([Job(1, 0, 1), Job(1, 3, 4)])
        assert len(segs) == 2
        assert all(seg.length == 1.0 for seg in segs)

    def test_overlapping_jobs_split_at_events(self):
        segs = elementary_segments([Job(1, 0, 4), Job(1, 2, 6)])
        lefts = [s.left for s in segs]
        assert lefts == [0, 2, 4]

    @given(jobset_strategy(max_jobs=15))
    def test_property_segments_cover_busy_span_exactly(self, jobs: JobSet):
        segs = elementary_segments(list(jobs))
        total = sum(s.length for s in segs)
        assert total == __import__("pytest").approx(jobs.busy_span().length, rel=1e-9)

    @given(jobset_strategy(max_jobs=12))
    def test_property_active_set_constant_on_segment(self, jobs: JobSet):
        for seg in elementary_segments(list(jobs)):
            mid = (seg.left + seg.right) / 2
            # on a segment a few ulps wide the midpoint can round onto an
            # endpoint, where the active set legitimately differs — only
            # probe midpoints that are strictly interior
            probes = [seg.left] + ([mid] if seg.left < mid < seg.right else [])
            active_sets = [
                frozenset(j.uid for j in jobs if j.active_at(t)) for t in probes
            ]
            assert all(s == active_sets[0] for s in active_sets)
            assert active_sets[0]  # non-empty by construction
