"""Dispatch determinism regression for the vectorized/sweep tier split.

The contract (see the :mod:`repro.core.vectorized` module docstring): which
tier a batch takes is a pure integer comparison ``n >= threshold`` against a
process-wide constant configured explicitly — never derived from timing,
core counts or any other platform probe.  A replayed trace must pick the
same path on every machine.  These tests pin that contract: the decision
function is pure and monotone, the threshold comes only from
``BSHM_VEC_THRESHOLD``/:func:`dispatch_threshold`, and malformed
configuration fails loudly instead of silently changing the path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DEFAULT_VEC_THRESHOLD,
    Job,
    JobSet,
    dispatch_threshold,
    use_vectorized,
    vec_threshold,
)
from repro.core import vectorized


class TestDecisionFunction:
    def test_pure_integer_compare(self):
        t = vec_threshold()
        assert not use_vectorized(t - 1)
        assert use_vectorized(t)
        assert use_vectorized(t + 1)

    def test_monotone_in_n(self):
        # once an instance is big enough, every bigger instance dispatches
        # the same way — there is no upper cutoff or sampling
        with dispatch_threshold(100):
            decisions = [use_vectorized(n) for n in range(200)]
        assert decisions == [n >= 100 for n in range(200)]

    def test_repeated_calls_identical(self):
        # no internal state, counters or timing: same n, same answer, always
        assert len({use_vectorized(5000) for _ in range(100)}) == 1

    def test_default_threshold(self):
        assert DEFAULT_VEC_THRESHOLD == 4096
        assert vec_threshold() == DEFAULT_VEC_THRESHOLD


class TestDispatchThresholdContext:
    def test_pins_and_restores(self):
        before = vec_threshold()
        with dispatch_threshold(7):
            assert vec_threshold() == 7
            assert use_vectorized(7) and not use_vectorized(6)
        assert vec_threshold() == before

    def test_restores_on_error(self):
        before = vec_threshold()
        with pytest.raises(RuntimeError):
            with dispatch_threshold(1):
                raise RuntimeError("boom")
        assert vec_threshold() == before

    def test_nesting(self):
        with dispatch_threshold(10):
            with dispatch_threshold(20):
                assert vec_threshold() == 20
            assert vec_threshold() == 10

    def test_zero_forces_vectorized_everywhere(self):
        with dispatch_threshold(0):
            assert use_vectorized(0)
            assert use_vectorized(1)

    def test_huge_threshold_forces_sweep_tier(self):
        with dispatch_threshold(2**63 - 1):
            assert not use_vectorized(10**9)


class TestEnvConfiguration:
    def test_env_parsed_as_int(self, monkeypatch):
        monkeypatch.setenv("BSHM_VEC_THRESHOLD", "123")
        assert vectorized._threshold_from_env() == 123

    def test_env_absent_uses_default(self, monkeypatch):
        monkeypatch.delenv("BSHM_VEC_THRESHOLD", raising=False)
        assert vectorized._threshold_from_env() == DEFAULT_VEC_THRESHOLD

    def test_env_non_integer_fails_loudly(self, monkeypatch):
        # a typo must not silently fall back and change which path runs
        monkeypatch.setenv("BSHM_VEC_THRESHOLD", "fast")
        with pytest.raises(ValueError, match="BSHM_VEC_THRESHOLD"):
            vectorized._threshold_from_env()


class TestBothPathsAgree:
    """The threshold moves work between two bit-compatible implementations."""

    def _jobset(self):
        rng = np.random.default_rng(7)
        starts = rng.integers(0, 50, size=40).astype(float)
        durations = rng.integers(1, 20, size=40).astype(float)
        sizes = rng.integers(1, 8, size=40).astype(float)
        return JobSet(
            Job(size=z, arrival=a, departure=a + d)
            for a, d, z in zip(starts, durations, sizes)
        )

    def test_demand_profile_identical_across_tiers(self):
        jobs = self._jobset()
        with dispatch_threshold(2**63 - 1):
            swept = jobs.demand_profile()
        with dispatch_threshold(0):
            vectorized_profile = jobs.demand_profile()
        assert swept == vectorized_profile

    def test_peak_and_span_identical_across_tiers(self):
        jobs = self._jobset()
        with dispatch_threshold(2**63 - 1):
            sweep_out = (jobs.peak_demand(), jobs.busy_span())
        with dispatch_threshold(0):
            vec_out = (jobs.peak_demand(), jobs.busy_span())
        assert sweep_out == vec_out
