"""Tests for the invariant checker: every rule fires on a minimal
violating snippet and stays quiet when suppressed via ``# bshm: ignore``.

The snippets are deliberately tiny — the point is pinning each rule's
trigger surface (and its scope) as regression tests, plus the acceptance
invariant that the repo itself is clean under ``bshm check src``.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis.static import (
    PARSE_ERROR_ID,
    RULES,
    UNKNOWN_SUPPRESSION_ID,
    check_file,
    check_paths,
    check_source,
    compute_schema_manifest,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def ids(findings):
    return [d.rule_id for d in findings]


def check(snippet: str, path: str):
    return check_source(textwrap.dedent(snippet), path=path)


# ---------------------------------------------------------------------------
# BSHM001 — closed-interval comparisons on half-open boundaries
# ---------------------------------------------------------------------------

class TestClosedBoundary:
    BAD = """
    def overlaps(a, b):
        return a.arrival <= b.departure and b.arrival <= a.departure
    """

    def test_fires(self):
        findings = check(self.BAD, "core/foo.py")
        assert ids(findings) == ["BSHM001", "BSHM001"]

    def test_gte_orientation_fires(self):
        findings = check(
            "def f(a, b):\n    return a.departure >= b.arrival\n", "placement/foo.py"
        )
        assert ids(findings) == ["BSHM001"]

    def test_strict_overlap_is_clean(self):
        snippet = """
        def overlaps(a, b):
            return a.arrival < b.departure and b.arrival < a.departure
        """
        assert check(snippet, "core/foo.py") == []

    def test_disjointness_le_is_clean(self):
        # end <= start is the *correct* half-open disjointness test
        snippet = "def disjoint(a, b):\n    return a.departure <= b.arrival\n"
        assert check(snippet, "core/foo.py") == []

    def test_out_of_scope_is_clean(self):
        assert check(self.BAD, "viz/foo.py") == []

    def test_suppressed(self):
        snippet = (
            "def overlaps(a, b):\n"
            "    return a.arrival <= b.departure  # bshm: ignore[BSHM001]\n"
        )
        assert check_source(snippet, path="core/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM002 — bare float equality on time coordinates
# ---------------------------------------------------------------------------

class TestFloatTimeEquality:
    def test_fires(self):
        findings = check(
            "def same(a, b):\n    return a.arrival == b.arrival\n", "online/foo.py"
        )
        assert ids(findings) == ["BSHM002"]

    def test_not_eq_fires(self):
        findings = check(
            "def differ(a, t):\n    return a.departure != t\n", "core/foo.py"
        )
        assert ids(findings) == ["BSHM002"]

    def test_structural_dunder_is_exempt(self):
        snippet = """
        class Interval:
            def __eq__(self, other):
                return self.left == other.left and self.right == other.right
        """
        assert check(snippet, "core/foo.py") == []

    def test_plain_names_are_clean(self):
        assert check("def f(a, b):\n    return a == b\n", "core/foo.py") == []

    def test_suppressed_on_previous_comment_line(self):
        snippet = (
            "def same(a, b):\n"
            "    # replay verification is deliberately bit-exact\n"
            "    # bshm: ignore[BSHM002]\n"
            "    return a.clock == b.clock\n"
        )
        assert check_source(snippet, path="service/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM003 — reference oracle kernels outside tests
# ---------------------------------------------------------------------------

class TestReferenceKernel:
    def test_call_fires(self):
        findings = check(
            "def cost(jobs):\n    return busy_time_reference(jobs)\n",
            "lowerbound/foo.py",
        )
        assert ids(findings) == ["BSHM003"]

    def test_call_inside_reference_twin_is_clean(self):
        snippet = """
        def cost_reference(jobs):
            return busy_time_reference(jobs)
        """
        assert check(snippet, "schedule/foo.py") == []

    def test_import_fires(self):
        findings = check(
            "from ..core.sweep import busy_union_reference\n", "offline/foo.py"
        )
        assert ids(findings) == ["BSHM003"]

    def test_reexport_in_init_is_clean(self):
        snippet = "from .sweep import busy_union_reference\n"
        assert check(snippet, "core/__init__.py") == []

    def test_tests_are_exempt(self):
        snippet = "def t():\n    return busy_time_reference([])\n"
        assert check(snippet, "tests/core/test_foo.py") == []

    def test_benchmarks_are_exempt(self):
        # the perf guardrails time oracle kernels against the sweep by design
        snippet = "def bench():\n    return busy_time_reference([])\n"
        assert check(snippet, "benchmarks/bench_sweep.py") == []

    def test_suppressed(self):
        snippet = (
            "def cost(jobs):\n"
            "    return busy_time_reference(jobs)  # bshm: ignore[BSHM003]\n"
        )
        assert check_source(snippet, path="lowerbound/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM004 — nondeterminism in replay-critical code
# ---------------------------------------------------------------------------

class TestNondeterminism:
    def test_import_random_fires(self):
        assert ids(check("import random\n", "online/foo.py")) == ["BSHM004"]

    def test_wall_clock_fires(self):
        findings = check(
            "import time\n\ndef now():\n    return time.time()\n", "service/foo.py"
        )
        assert ids(findings) == ["BSHM004"]

    def test_global_numpy_rng_fires(self):
        findings = check(
            "def f(np):\n    return np.random.rand(3)\n", "core/foo.py"
        )
        assert ids(findings) == ["BSHM004"]

    def test_unseeded_default_rng_fires(self):
        findings = check(
            "def f(np):\n    return np.random.default_rng()\n", "core/foo.py"
        )
        assert ids(findings) == ["BSHM004"]

    def test_seeded_default_rng_is_clean(self):
        snippet = "def f(np):\n    return np.random.default_rng(0)\n"
        assert check(snippet, "core/foo.py") == []

    def test_generators_scope_is_exempt(self):
        # jobs/generators are caller-seeded by convention, not rule scope
        assert check("import random\n", "jobs/generators/foo.py") == []

    def test_suppressed(self):
        snippet = "import time\n\ndef f():\n    return time.perf_counter()  # bshm: ignore[BSHM004]\n"
        assert check_source(snippet, path="service/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM005 — mutation of frozen structures
# ---------------------------------------------------------------------------

class TestFrozenMutation:
    def test_setattr_outside_constructor_fires(self):
        findings = check(
            "def tweak(iv):\n    object.__setattr__(iv, 'left', 0.0)\n",
            "placement/foo.py",
        )
        assert ids(findings) == ["BSHM005"]

    def test_setattr_in_init_is_clean(self):
        snippet = """
        class Frozen:
            def __init__(self, left):
                object.__setattr__(self, 'left', left)
        """
        assert check(snippet, "core/foo.py") == []

    def test_field_assignment_fires(self):
        findings = check("def f(job):\n    job.arrival = 3.0\n", "online/foo.py")
        assert ids(findings) == ["BSHM005"]

    def test_aug_assignment_fires(self):
        findings = check("def f(iv):\n    iv.right += 1.0\n", "core/foo.py")
        assert ids(findings) == ["BSHM005"]

    def test_unrelated_attribute_is_clean(self):
        assert check("def f(x):\n    x.count = 3\n", "core/foo.py") == []

    def test_suppressed(self):
        snippet = (
            "def f(job):\n    job.arrival = 3.0  # bshm: ignore[BSHM005]\n"
        )
        assert check_source(snippet, path="online/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM007 — argsort without a stable kind in order-sensitive scopes
# ---------------------------------------------------------------------------

class TestUnstableArgsort:
    def test_bare_argsort_fires(self):
        snippet = "def f(t):\n    import numpy as np\n    return np.argsort(t)\n"
        assert ids(check(snippet, "core/foo.py")) == ["BSHM007"]

    def test_method_call_fires(self):
        snippet = "def f(t):\n    return t.argsort()\n"
        assert ids(check(snippet, "service/foo.py")) == ["BSHM007"]

    def test_quicksort_kind_fires(self):
        snippet = (
            "def f(t):\n    import numpy as np\n"
            "    return np.argsort(t, kind='quicksort')\n"
        )
        assert ids(check(snippet, "online/foo.py")) == ["BSHM007"]

    def test_stable_kind_is_clean(self):
        snippet = (
            "def f(t):\n    import numpy as np\n"
            "    return np.argsort(t, kind='stable')\n"
        )
        assert check(snippet, "core/foo.py") == []

    def test_mergesort_kind_is_clean(self):
        snippet = (
            "def f(t):\n    import numpy as np\n"
            "    return np.argsort(t, kind='mergesort')\n"
        )
        assert check(snippet, "core/foo.py") == []

    def test_lexsort_is_exempt(self):
        snippet = (
            "def f(a, b):\n    import numpy as np\n"
            "    return np.lexsort((a, b))\n"
        )
        assert check(snippet, "core/foo.py") == []

    def test_out_of_scope_is_clean(self):
        snippet = "def f(t):\n    import numpy as np\n    return np.argsort(t)\n"
        assert check(snippet, "experiments/foo.py") == []

    def test_suppressed(self):
        snippet = (
            "def f(t):\n    import numpy as np\n"
            "    return np.argsort(t)  # bshm: ignore[BSHM007]\n"
        )
        assert check(snippet, "core/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM006 — checkpoint schema drift
# ---------------------------------------------------------------------------

FAKE_CHECKPOINT = '''
TRACE_VERSION = {trace_version}
CHECKPOINT_VERSION = {checkpoint_version}


def record_trace(runtime):
    header = {{"kind": "header", "version": TRACE_VERSION, "config": None}}
    return [header]


def snapshot(runtime):
    return {{"version": CHECKPOINT_VERSION, "state": {{{extra}"clock": 0}}}}
'''


class TestCheckpointSchema:
    def _write(self, tmp_path, *, trace_version=1, checkpoint_version=1, extra=""):
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True, exist_ok=True)
        path = pkg / "checkpoint.py"
        path.write_text(
            FAKE_CHECKPOINT.format(
                trace_version=trace_version,
                checkpoint_version=checkpoint_version,
                extra=extra,
            )
        )
        return path

    def test_missing_manifest_fires(self, tmp_path):
        path = self._write(tmp_path)
        findings = check_file(path)
        assert ids(findings) == ["BSHM006"]
        assert "manifest" in findings[0].message

    def test_in_sync_manifest_is_clean(self, tmp_path):
        path = self._write(tmp_path)
        manifest = compute_schema_manifest(path)
        (path.parent / "schema_manifest.json").write_text(json.dumps(manifest))
        assert check_file(path) == []

    def test_field_edit_without_bump_fires(self, tmp_path):
        path = self._write(tmp_path)
        manifest = compute_schema_manifest(path)
        (path.parent / "schema_manifest.json").write_text(json.dumps(manifest))
        # sneak a new record field in without touching the versions
        path = self._write(tmp_path, extra='"surprise": 1, ')
        findings = check_file(path)
        assert ids(findings) == ["BSHM006"]
        assert "surprise" in findings[0].message
        assert "bump" in findings[0].message

    def test_version_bump_with_stale_manifest_fires(self, tmp_path):
        path = self._write(tmp_path)
        manifest = compute_schema_manifest(path)
        (path.parent / "schema_manifest.json").write_text(json.dumps(manifest))
        path = self._write(tmp_path, trace_version=2)
        findings = check_file(path)
        assert ids(findings) == ["BSHM006"]
        assert "TRACE_VERSION" in findings[0].message

    def test_repo_manifest_is_in_sync(self):
        checkpoint = REPO_ROOT / "src" / "repro" / "service" / "checkpoint.py"
        manifest = json.loads(
            (checkpoint.parent / "schema_manifest.json").read_text()
        )
        assert manifest == compute_schema_manifest(checkpoint)


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------

class TestEngine:
    def test_unknown_suppression_id_is_a_finding(self):
        # assembled so this test file's own source doesn't carry the marker
        snippet = "x = 1  # bshm: " + "ignore[BSHM999]\n"
        findings = check_source(snippet, path="core/foo.py")
        assert ids(findings) == [UNKNOWN_SUPPRESSION_ID]

    def test_parse_error_is_a_finding(self):
        findings = check_source("def f(:\n", path="core/foo.py")
        assert ids(findings) == [PARSE_ERROR_ID]

    def test_rule_catalogue_is_stable(self):
        assert sorted(RULES) == [
            "BSHM001", "BSHM002", "BSHM003", "BSHM004", "BSHM005", "BSHM006",
            "BSHM007", "BSHM008", "BSHM009", "BSHM010", "BSHM011", "BSHM012",
        ]

    def test_findings_are_sorted_and_formatted(self):
        snippet = (
            "def f(a, b):\n"
            "    b.arrival = a.departure\n"
            "    return a.arrival <= b.departure\n"
        )
        findings = check_source(snippet, path="core/foo.py")
        assert ids(findings) == ["BSHM005", "BSHM001"]  # line order
        rendered = findings[0].format()
        assert rendered.startswith("core/foo.py:2:")
        assert "error[BSHM005]" in rendered

    def test_repo_src_is_clean(self):
        findings, n_files = check_paths([REPO_ROOT / "src"])
        assert n_files > 100
        assert findings == []


# ---------------------------------------------------------------------------
# BSHM010 — blocking calls inside async service code
# ---------------------------------------------------------------------------

class TestAsyncBlockingCall:
    def test_time_sleep_in_async_def_fires(self):
        snippet = """
        import time
        async def handler(self):
            time.sleep(0.5)
        """
        assert ids(check(snippet, "service/foo.py")) == ["BSHM010"]

    def test_subprocess_run_in_async_def_fires(self):
        snippet = """
        import subprocess
        async def handler(self):
            subprocess.run(["ls"])
        """
        assert ids(check(snippet, "service/foo.py")) == ["BSHM010"]

    def test_applies_in_service_tests_too(self):
        snippet = """
        import time
        async def test_handler():
            time.sleep(0.5)
        """
        assert ids(check(snippet, "tests/service/test_foo.py")) == ["BSHM010"]

    def test_asyncio_sleep_is_clean(self):
        snippet = """
        import asyncio
        async def handler(self):
            await asyncio.sleep(0.5)
        """
        assert check(snippet, "service/foo.py") == []

    def test_sync_def_is_clean(self):
        snippet = "import time\ndef worker():\n    time.sleep(0.5)\n"
        assert check(snippet, "service/foo.py") == []

    def test_nested_sync_def_inside_async_is_clean(self):
        snippet = """
        import time
        async def handler(self):
            def blocking_helper():
                time.sleep(0.5)
            return blocking_helper
        """
        assert check(snippet, "service/foo.py") == []

    def test_out_of_scope_is_clean(self):
        snippet = "import time\nasync def f():\n    time.sleep(1)\n"
        assert check(snippet, "core/foo.py") == []

    def test_suppressed(self):
        snippet = (
            "import time\n"
            "async def handler(self):\n"
            "    time.sleep(0.5)  # bshm: ignore[BSHM010]\n"
        )
        assert check_source(snippet, path="service/foo.py") == []


# ---------------------------------------------------------------------------
# BSHM012 — tolerance drift: raw noise-floor literals in comparisons
# ---------------------------------------------------------------------------

class TestToleranceDrift:
    def test_literal_comparison_fires(self):
        snippet = "def f(x):\n    return abs(x) < 1e-9\n"
        assert ids(check(snippet, "core/foo.py")) == ["BSHM012"]

    def test_isclose_with_literal_atol_fires(self):
        snippet = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.isclose(a, b, atol=1e-8)\n"
        )
        assert ids(check(snippet, "service/foo.py")) == ["BSHM012"]

    def test_additive_slack_fires(self):
        snippet = "import math\ndef f(x):\n    return math.floor(x + 1e-12)\n"
        assert ids(check(snippet, "placement/foo.py")) == ["BSHM012"]

    def test_subtractive_slack_fires(self):
        snippet = "import math\ndef f(r):\n    return math.ceil(r - 1e-9)\n"
        assert ids(check(snippet, "offline/foo.py")) == ["BSHM012"]

    def test_multiplicative_guard_fires_once(self):
        # (1 + 1e-12) inside a comparison: the BinOp check flags the slack,
        # the Compare check stays quiet (its operand is not a bare literal)
        snippet = "def f(s, g):\n    return s <= g * (1 + 1e-12)\n"
        assert ids(check(snippet, "online/foo.py")) == ["BSHM012"]

    def test_tolerance_alias_assignment_fires(self):
        assert ids(check("_EPS = 1e-9\n", "placement/foo.py")) == ["BSHM012"]
        assert ids(check("_CAP_TOL = 1e-9\n", "schedule/foo.py")) == ["BSHM012"]
        assert ids(check("MY_TOL: float = 1e-7\n", "core/foo.py")) == ["BSHM012"]

    def test_non_tolerance_assignment_is_clean(self):
        # a small literal under a non-tolerance name is a parameter, not drift
        assert check("LEARNING_RATE = 1e-5\n", "core/foo.py") == []

    def test_alias_of_named_constant_is_clean(self):
        snippet = (
            "from repro.core.tolerance import FINE_TOL\n"
            "_REL_TOL = FINE_TOL\n"
        )
        assert check(snippet, "machines/foo.py") == []

    def test_named_constant_is_clean(self):
        snippet = (
            "from repro.core.tolerance import TOLERANCE\n"
            "def f(x):\n    return abs(x) < TOLERANCE\n"
        )
        assert check(snippet, "core/foo.py") == []

    def test_named_constant_slack_is_clean(self):
        snippet = (
            "from repro.core.tolerance import FINE_TOL\n"
            "def f(x):\n    return int(x + FINE_TOL)\n"
        )
        assert check(snippet, "placement/foo.py") == []

    def test_large_literal_is_clean(self):
        # 0.5 is a semantic threshold, not a noise floor
        snippet = "def f(x):\n    return x < 0.5\n"
        assert check(snippet, "core/foo.py") == []

    def test_tolerance_module_itself_is_exempt(self):
        snippet = "TOLERANCE = 1e-9\nassert TOLERANCE < 1e-4\n"
        assert check(snippet, "core/tolerance.py") == []

    def test_out_of_scope_is_clean(self):
        snippet = "def f(x):\n    return abs(x) < 1e-9\n"
        assert check(snippet, "viz/foo.py") == []

    def test_suppressed(self):
        snippet = (
            "def f(x):\n"
            "    return abs(x) < 1e-12  # bshm: ignore[BSHM012]\n"
        )
        assert check_source(snippet, path="core/foo.py") == []


# ---------------------------------------------------------------------------
# suppression placement: comment-only ignores attach to the next statement
# ---------------------------------------------------------------------------

class TestSuppressionPlacement:
    def test_comment_above_statement_suppresses_it(self):
        snippet = (
            "def f(a, b):\n"
            "    # bshm: ignore[BSHM001]\n"
            "    return a.arrival <= b.departure\n"
        )
        assert check_source(snippet, path="core/foo.py") == []

    def test_comment_above_decorated_def_covers_the_def(self):
        # regression: the ignore used to land on the decorator line only
        from repro.analysis.static import analyze_source

        snippet = (
            "# bshm: ignore[BSHM003]\n"
            "@functools.cache\n"
            "def helper():\n"
            "    return busy_time_reference()\n"
        )
        findings, supp, _ = analyze_source(snippet, "core/foo.py")
        assert supp == {3: {"BSHM003"}}  # the def line, not the decorator

    def test_multi_decorator_stack_is_hopped(self):
        from repro.analysis.static import analyze_source

        snippet = (
            "# bshm: ignore[BSHM005]\n"
            "@first\n"
            "@second(arg=1)\n"
            "class C:\n"
            "    pass\n"
        )
        _findings, supp, _ = analyze_source(snippet, "core/foo.py")
        assert supp == {4: {"BSHM005"}}

    def test_blank_and_comment_lines_are_skipped(self):
        snippet = (
            "def f(a, b):\n"
            "    # bshm: ignore[BSHM001]\n"
            "\n"
            "    # explanation comment\n"
            "    return a.arrival <= b.departure\n"
        )
        assert check_source(snippet, path="core/foo.py") == []

    def test_comment_does_not_leak_past_its_statement(self):
        snippet = (
            "def f(a, b):\n"
            "    # bshm: ignore[BSHM001]\n"
            "    x = 1\n"
            "    return a.arrival <= b.departure\n"
        )
        assert ids(check_source(snippet, path="core/foo.py")) == ["BSHM001"]

    def test_trailing_comment_at_eof_is_harmless(self):
        snippet = "x = 1\n# bshm: ignore[BSHM001]\n"
        assert check_source(snippet, path="core/foo.py") == []
