"""Fires / suppressed / negative tests for the interprocedural rules
(BSHM008 oracle reachability, BSHM009 nondeterminism taint, BSHM011
durability ordering).

File-level fires use :func:`project_from_sources` + ``check_project``
directly; suppression tests go through :func:`run_check` on a temporary
package tree, because per-line suppressions for project rules are the
runner's job.
"""

import textwrap
from pathlib import Path

from repro.analysis.static import check_project, project_from_sources, run_check


def project_of(sources: dict[str, str]):
    return project_from_sources(
        {p: textwrap.dedent(s) for p, s in sources.items()}
    )


def ids(findings):
    return [d.rule_id for d in findings]


def run_tmp(tmp_path: Path, sources: dict[str, str]):
    """Materialize ``{relpath: source}`` under tmp and run the full check."""
    for rel, src in sources.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return run_check([tmp_path], use_cache=False)


# ---------------------------------------------------------------------------
# BSHM008 — oracle reachability
# ---------------------------------------------------------------------------

class TestOracleReachability:
    HOT_ORACLE = {
        "src/repro/fake/kernels.py": """
        def cost_reference(jobs):
            return sum(jobs)

        def estimate(jobs):
            return cost_reference(jobs)
        """,
        "src/repro/fake/engine.py": """
        from .kernels import estimate

        def run_online(jobs, scheduler):
            return estimate(jobs)
        """,
    }

    def test_fires_through_helper_chain(self):
        findings = check_project(project_of(self.HOT_ORACLE))
        assert ids(findings) == ["BSHM008"]
        assert "run_online" in findings[0].message

    def test_runtime_method_entry_fires(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/rt.py": """
                    def place_reference(jobs):
                        return sorted(jobs)

                    class SchedulerRuntime:
                        def submit(self, job):
                            return place_reference([job])
                    """
                }
            )
        )
        assert ids(findings) == ["BSHM008"]

    def test_unreached_oracle_is_clean(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/mod.py": """
                    def cost_reference(jobs):
                        return sum(jobs)

                    def serve_forever(runtime):
                        return runtime.cost()
                    """
                }
            )
        )
        assert findings == []

    def test_no_entry_points_is_clean(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/mod.py": """
                    def cost_reference(jobs):
                        return sum(jobs)

                    def caller(jobs):
                        return cost_reference(jobs)
                    """
                }
            )
        )
        assert findings == []

    def test_suppressed_on_decorated_def(self, tmp_path):
        # end-to-end satellite-1 regression: the comment-only ignore must
        # hop the decorator and land on the def the diagnostic anchors at
        report = run_tmp(
            tmp_path,
            {
                "src/repro/fake/mod.py": """
                import functools

                # differential harness wired into the demo path on purpose
                # bshm: ignore[BSHM008, BSHM003]
                @functools.lru_cache
                def cost_reference(jobs):
                    return 1

                def run_online(jobs, scheduler):
                    return cost_reference(jobs)  # bshm: ignore[BSHM003]
                """,
            },
        )
        assert ids(report.findings) == []


# ---------------------------------------------------------------------------
# BSHM009 — nondeterminism taint into replay sinks
# ---------------------------------------------------------------------------

class TestNondeterminismTaint:
    def test_cross_function_wall_clock_taint_fires(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/helpers.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
                    "src/repro/fake/writer.py": """
                    from .helpers import stamp

                    def persist(wal, event):
                        t = stamp()
                        wal.append_new({"event": event, "t": t})
                    """,
                }
            )
        )
        assert ids(findings) == ["BSHM009"]
        assert "append_new" in findings[0].message

    def test_unseeded_rng_into_shard_router_fires(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/router.py": """
                    import numpy as np

                    def route(shards, req):
                        salt = np.random.default_rng().integers(10)
                        return shard_for_uid(salt)
                    """
                }
            )
        )
        assert ids(findings) == ["BSHM009"]

    def test_set_iteration_taint_fires(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/mod.py": """
                    def drain(wal, pending):
                        for uid in {1, 2, 3}:
                            wal.append_events(uid)
                    """
                }
            )
        )
        assert ids(findings) == ["BSHM009"]

    def test_sorted_launders_the_taint(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/mod.py": """
                    import time

                    def persist(wal, pending):
                        t = time.time()
                        wal.append_new(sorted(pending))
                    """
                }
            )
        )
        assert findings == []

    def test_seeded_rng_is_clean(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/fake/mod.py": """
                    import numpy as np

                    def persist(wal):
                        draw = np.random.default_rng(0).integers(10)
                        wal.append_new(draw)
                    """
                }
            )
        )
        assert findings == []

    def test_suppressed(self, tmp_path):
        report = run_tmp(
            tmp_path,
            {
                "src/repro/fake/mod.py": """
                import time  # bshm: ignore[BSHM004]

                def persist(wal, event):
                    t = time.time()  # bshm: ignore[BSHM004]
                    wal.append_new(t)  # bshm: ignore[BSHM009]
                """,
            },
        )
        assert ids(report.findings) == []


# ---------------------------------------------------------------------------
# BSHM011 — durability ordering (append before ack)
# ---------------------------------------------------------------------------

class TestDurabilityOrdering:
    def test_append_after_ack_fires(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/service/handler.py": """
                    class Handler:
                        def handle_request(self, wal, req):
                            resp = {"ok": True, "uid": req["uid"]}
                            self._send(resp)
                            wal.append_new(req)
                    """
                }
            )
        )
        assert ids(findings) == ["BSHM011", "BSHM011"]
        messages = " / ".join(d.message for d in findings)
        assert "no durable append" in messages
        assert "after the success acknowledgement" in messages

    def test_success_return_with_no_append_on_path_fires(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/service/handler.py": """
                    class Handler:
                        def handle_request(self, wal, req):
                            if req.get("mutating"):
                                wal.append_new(req)
                                return {"ok": True}
                            return {"ok": True}
                    """
                }
            )
        )
        assert ids(findings) == ["BSHM011"]

    def test_conditional_append_then_ack_is_clean(self):
        # the real _dispatch shape: servers without a WAL attached have no
        # ordering obligation, so `if wal is not None: append` satisfies it
        findings = check_project(
            project_of(
                {
                    "src/repro/service/handler.py": """
                    class Handler:
                        def handle_request(self, wal, req):
                            result = self.apply(req)
                            if wal is not None:
                                wal.append_new(req)
                            return {"ok": True, "result": result}
                    """
                }
            )
        )
        assert findings == []

    def test_error_response_needs_no_append(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/service/handler.py": """
                    class Handler:
                        def handle_request(self, wal, req):
                            if not req:
                                self._send(ServiceError("empty").to_wire())
                                return
                            wal.append_new(req)
                            return {"ok": True}
                    """
                }
            )
        )
        assert findings == []

    def test_outside_service_is_clean(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/core/handler.py": """
                    class Handler:
                        def handle_request(self, wal, req):
                            self._send({"ok": True})
                            wal.append_new(req)
                    """
                }
            )
        )
        assert findings == []

    def test_read_only_op_without_append_is_clean(self):
        findings = check_project(
            project_of(
                {
                    "src/repro/service/handler.py": """
                    class Handler:
                        def op_stats(self, req):
                            return {"ok": True, "clock": self.runtime.clock}
                    """
                }
            )
        )
        assert findings == []

    def test_suppressed(self, tmp_path):
        report = run_tmp(
            tmp_path,
            {
                "src/repro/service/handler.py": """
                class Handler:
                    def handle_request(self, wal, req):
                        # replication acks early by design here
                        self._send({"ok": True})  # bshm: ignore[BSHM011]
                        wal.append_new(req)  # bshm: ignore[BSHM011]
                """,
            },
        )
        assert ids(report.findings) == []
