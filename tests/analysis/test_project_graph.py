"""Tests for the whole-program layer: module facts, symbol resolution,
call-graph construction and hot-path reachability.

The acceptance invariant pinned here: over the real repository, the
``*_reference`` oracle kernels (e.g. ``IndexedPool.first_fit_reference``)
are *unreachable* from the ``bshm serve`` entry points — and a seeded
injection (a fake package whose serve path calls an oracle through a
helper) is caught.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.static import (
    analyze_source,
    build_callgraph,
    build_project,
    hot_entry_points,
    iter_python_files,
    project_from_sources,
)
from repro.analysis.static.interprocedural import OracleReachability
from repro.analysis.static.project import module_name

REPO_ROOT = Path(__file__).resolve().parents[2]


def project_of(sources: dict[str, str]):
    return project_from_sources(
        {p: textwrap.dedent(s) for p, s in sources.items()}
    )


@pytest.fixture(scope="module")
def repo_project():
    facts = []
    for f in iter_python_files([REPO_ROOT / "src"]):
        _, _, fa = analyze_source(f.read_text(), str(f), want_facts=True)
        facts.append(fa)
    return build_project(facts)


class TestModuleFacts:
    def test_module_name(self):
        assert module_name("src/repro/core/sweep.py") == "repro.core.sweep"
        assert module_name("src/repro/core/__init__.py") == "repro.core"
        assert module_name("core/foo.py") == "repro.core.foo"

    def test_functions_and_classes_collected(self):
        project = project_of(
            {
                "src/repro/pkg/mod.py": """
                class Runner:
                    def go(self):
                        return helper()

                def helper():
                    return 1
                """
            }
        )
        assert "repro.pkg.mod.Runner.go" in project.functions
        assert "repro.pkg.mod.helper" in project.functions
        assert "repro.pkg.mod.Runner" in project.classes

    def test_import_alias_resolution(self):
        project = project_of(
            {
                "src/repro/pkg/a.py": "def target():\n    return 1\n",
                "src/repro/pkg/b.py": "from .a import target as t\n",
            }
        )
        assert (
            project.resolve_symbol("repro.pkg.b", "t") == "repro.pkg.a.target"
        )

    def test_reexport_chasing_through_init(self):
        project = project_of(
            {
                "src/repro/pkg/__init__.py": "from .impl import kernel\n",
                "src/repro/pkg/impl.py": "def kernel():\n    return 0\n",
                "src/repro/use.py": (
                    "from .pkg import kernel\n"
                    "def f():\n    return kernel()\n"
                ),
            }
        )
        assert (
            project.resolve_symbol("repro.use", "kernel")
            == "repro.pkg.impl.kernel"
        )


class TestCallGraph:
    def test_direct_and_method_edges(self):
        project = project_of(
            {
                "src/repro/pkg/mod.py": """
                def helper():
                    return 1

                class Worker:
                    def run(self):
                        return self.step() + helper()

                    def step(self):
                        return 2
                """
            }
        )
        graph = build_callgraph(project)
        callees = {e.callee for e in graph.callees("repro.pkg.mod.Worker.run")}
        assert "repro.pkg.mod.Worker.step" in callees
        assert "repro.pkg.mod.helper" in callees

    def test_callback_reference_edge(self):
        project = project_of(
            {
                "src/repro/pkg/mod.py": """
                def handler():
                    return 1

                def serve(start):
                    start(handler)
                """
            }
        )
        graph = build_callgraph(project)
        edges = graph.callees("repro.pkg.mod.serve")
        ref = [e for e in edges if e.kind == "ref"]
        assert [e.callee for e in ref] == ["repro.pkg.mod.handler"]

    def test_dunder_cha_produces_no_edges(self):
        # super().__init__() must not link every constructor to every other
        project = project_of(
            {
                "src/repro/pkg/a.py": """
                class Base:
                    def __init__(self):
                        self.x = 1

                class Sub(Exception):
                    def __init__(self):
                        super().__init__()
                """
            }
        )
        graph = build_callgraph(project)
        assert graph.callees("repro.pkg.a.Sub.__init__") == []

    def test_reachability_bfs_and_path(self):
        project = project_of(
            {
                "src/repro/pkg/mod.py": """
                def c():
                    return 0

                def b():
                    return c()

                def a():
                    return b()
                """
            }
        )
        graph = build_callgraph(project)
        tree = graph.reachable(["repro.pkg.mod.a"])
        assert "repro.pkg.mod.c" in tree
        assert graph.path_to(tree, "repro.pkg.mod.c") == [
            "repro.pkg.mod.a",
            "repro.pkg.mod.b",
            "repro.pkg.mod.c",
        ]


class TestHotPathReachability:
    """The BSHM008 acceptance pair: real repo clean, injection caught."""

    def test_repo_hot_entry_points_exist(self, repo_project):
        entries = hot_entry_points(repo_project)
        assert any(q.endswith("serve_forever") for q in entries)
        assert any(q.endswith("SchedulerRuntime.submit") for q in entries)

    def test_repo_oracles_unreachable_from_serve(self, repo_project):
        graph = build_callgraph(repo_project)
        tree = graph.reachable(hot_entry_points(repo_project))
        reached_oracles = sorted(
            q
            for q in tree
            if q in repo_project.functions
            and repo_project.functions[q]["name"].endswith("_reference")
        )
        assert reached_oracles == []
        # sanity: the oracle exists in the project, it is just not reached
        assert any(
            q.endswith("IndexedPool.first_fit_reference")
            for q in repo_project.functions
        )

    def test_injected_oracle_call_is_reported(self):
        project = project_of(
            {
                "src/repro/fake/kernels.py": """
                def busy_time_reference(jobs):
                    return sum(jobs)

                def helper(jobs):
                    return busy_time_reference(jobs)
                """,
                "src/repro/fake/server.py": """
                from .kernels import helper

                def serve_forever(runtime):
                    return helper([1, 2])
                """,
            }
        )
        graph = build_callgraph(project)
        findings = list(OracleReachability().check_project(project, graph))
        assert [d.rule_id for d in findings] == ["BSHM008"]
        assert "busy_time_reference" in findings[0].message
        assert "serve_forever" in findings[0].message
        # anchored at the oracle's def line in the defining file
        assert findings[0].path == "src/repro/fake/kernels.py"
