"""Tests for markdown schedule reports."""

import pytest

from repro import dec_ladder, dec_offline, uniform_workload
from repro.analysis.report import schedule_report


@pytest.fixture
def schedule_and_jobs(rng):
    ladder = dec_ladder(3)
    jobs = uniform_workload(30, rng, max_size=ladder.capacity(3))
    return dec_offline(jobs, ladder), jobs


class TestScheduleReport:
    def test_contains_headline_numbers(self, schedule_and_jobs):
        sched, jobs = schedule_and_jobs
        text = schedule_report(sched, jobs, algorithm="dec-offline")
        assert "dec-offline" in text
        assert f"{sched.cost():.4f}" in text
        assert "measured ratio" in text

    def test_per_type_table_rows(self, schedule_and_jobs):
        sched, jobs = schedule_and_jobs
        text = schedule_report(sched, jobs)
        # one markdown row per ladder type
        assert text.count("\n| 1 |") == 1
        assert text.count("\n| 3 |") == 1

    def test_sections_present(self, schedule_and_jobs):
        sched, jobs = schedule_and_jobs
        text = schedule_report(sched, jobs, title="My Report")
        assert text.startswith("# My Report")
        for section in ("## Cost by machine type", "## Busiest machines", "## Demand profile"):
            assert section in text

    def test_busiest_machines_sorted(self, schedule_and_jobs):
        sched, jobs = schedule_and_jobs
        text = schedule_report(sched, jobs)
        section = text.split("## Busiest machines")[1].split("## Demand profile")[0]
        costs = [
            float(line.split("|")[-2])
            for line in section.splitlines()
            if line.startswith("| T")
        ]
        assert costs == sorted(costs, reverse=True)
