"""Tests for the hard-instance search driver."""

import pytest

from repro import dec_ladder, dec_offline
from repro.analysis.hardness import HardInstance, search_hard_instance


class TestHardnessSearch:
    def test_returns_valid_instance(self):
        found = search_hard_instance(
            dec_offline, dec_ladder(3), seed=3, n_jobs=12,
            random_rounds=4, mutate_rounds=4,
        )
        assert isinstance(found, HardInstance)
        assert found.ratio >= 1.0 - 1e-9
        assert len(found.jobs) >= 12  # mutation may clone

    def test_deterministic_under_seed(self):
        kwargs = dict(seed=7, n_jobs=10, random_rounds=3, mutate_rounds=3)
        a = search_hard_instance(dec_offline, dec_ladder(2), **kwargs)
        b = search_hard_instance(dec_offline, dec_ladder(2), **kwargs)
        assert a.ratio == b.ratio

    def test_search_improves_over_first_sample(self):
        """With a real budget the best ratio should beat the round--1 draw
        on at least... well, never get worse (monotone by construction)."""
        small = search_hard_instance(
            dec_offline, dec_ladder(3), seed=11, n_jobs=12,
            random_rounds=1, mutate_rounds=0,
        )
        big = search_hard_instance(
            dec_offline, dec_ladder(3), seed=11, n_jobs=12,
            random_rounds=12, mutate_rounds=12,
        )
        assert big.ratio >= small.ratio

    def test_ratio_below_proven_bound(self):
        found = search_hard_instance(
            dec_offline, dec_ladder(3), seed=5, n_jobs=15,
            random_rounds=6, mutate_rounds=6,
        )
        assert found.ratio <= 14.0
