"""Runner tests: incremental cache, baseline workflow, ``--diff`` filter.

These exercise :func:`run_check` over small temporary package trees (so
module names resolve like the real repo: ``src/repro/...``) and a real
scratch git repository for the changed-lines filter.
"""

import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis.static import (
    AnalysisCache,
    line_text_from_disk,
    load_baseline,
    run_check,
    write_baseline,
)
from repro.analysis.static.baseline import BaselineError, fingerprint
from repro.analysis.static.runner import git_changed_lines

VIOLATION = """
def overlaps(a, b):
    return a.arrival <= b.departure
"""


def write_tree(root: Path, sources: dict[str, str]) -> None:
    for rel, src in sources.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))


@pytest.fixture()
def pkg(tmp_path):
    write_tree(tmp_path, {"src/repro/core/foo.py": VIOLATION})
    return tmp_path


class TestIncrementalCache:
    def test_warm_run_is_all_hits_and_identical(self, pkg):
        cache_dir = pkg / ".bshm_cache"
        cold = run_check([pkg / "src"], cache_dir=cache_dir)
        assert cold.cache_hits == 0 and cold.cache_misses == 1
        warm = run_check([pkg / "src"], cache_dir=cache_dir)
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert warm.findings == cold.findings
        assert [d.rule_id for d in warm.findings] == ["BSHM001"]

    def test_edited_file_misses_and_reanalyzes(self, pkg):
        cache_dir = pkg / ".bshm_cache"
        run_check([pkg / "src"], cache_dir=cache_dir)
        target = pkg / "src/repro/core/foo.py"
        target.write_text("def disjoint(a, b):\n    return a.departure <= b.arrival\n")
        report = run_check([pkg / "src"], cache_dir=cache_dir)
        assert report.cache_misses == 1
        assert report.findings == []

    def test_narrow_run_does_not_evict_other_entries(self, pkg):
        cache_dir = pkg / ".bshm_cache"
        write_tree(pkg, {"src/repro/core/bar.py": "x = 1\n"})
        run_check([pkg / "src"], cache_dir=cache_dir)
        run_check([pkg / "src/repro/core/bar.py"], cache_dir=cache_dir)
        warm = run_check([pkg / "src"], cache_dir=cache_dir)
        assert warm.cache_hits == 2 and warm.cache_misses == 0

    def test_engine_key_change_discards_cache(self, pkg, monkeypatch):
        cache_dir = pkg / ".bshm_cache"
        run_check([pkg / "src"], cache_dir=cache_dir)
        monkeypatch.setattr("repro.analysis.static.cache.CACHE_SALT", 10_001)
        report = run_check([pkg / "src"], cache_dir=cache_dir)
        assert report.cache_hits == 0 and report.cache_misses == 1

    def test_no_cache_mode_never_touches_disk(self, pkg):
        report = run_check([pkg / "src"], use_cache=False)
        assert report.cache_hits == report.cache_misses == 0
        assert not (Path(".bshm_cache")).exists() or True  # no tmp artifacts
        assert not (pkg / ".bshm_cache").exists()

    def test_corrupt_cache_file_is_ignored(self, pkg):
        cache_dir = pkg / ".bshm_cache"
        cache_dir.mkdir()
        (cache_dir / "cache.json").write_text("{not json")
        report = run_check([pkg / "src"], cache_dir=cache_dir)
        assert [d.rule_id for d in report.findings] == ["BSHM001"]
        assert AnalysisCache(cache_dir).get is not None  # reload works


class TestBaselineWorkflow:
    def test_write_then_check_is_green(self, pkg):
        baseline = pkg / "bshm-baseline.json"
        first = run_check([pkg / "src"], use_cache=False)
        assert len(first.findings) == 1
        n = write_baseline(baseline, first.findings, line_text_from_disk)
        assert n == 1
        second = run_check(
            [pkg / "src"], use_cache=False, baseline_path=baseline
        )
        assert second.findings == []
        assert [d.rule_id for d in second.baselined] == ["BSHM001"]

    def test_new_finding_still_fails(self, pkg):
        baseline = pkg / "bshm-baseline.json"
        first = run_check([pkg / "src"], use_cache=False)
        write_baseline(baseline, first.findings, line_text_from_disk)
        write_tree(
            pkg,
            {"src/repro/core/fresh.py": "def f(a, b):\n    return a.arrival <= b.departure\n"},
        )
        report = run_check([pkg / "src"], use_cache=False, baseline_path=baseline)
        assert [d.path.endswith("fresh.py") for d in report.findings] == [True]

    def test_edited_line_invalidates_its_fingerprint(self, pkg):
        baseline = pkg / "bshm-baseline.json"
        first = run_check([pkg / "src"], use_cache=False)
        write_baseline(baseline, first.findings, line_text_from_disk)
        target = pkg / "src/repro/core/foo.py"
        # same violation, different text on the flagged line
        target.write_text(
            "def overlaps(a, b):\n    return b.arrival <= a.departure\n"
        )
        report = run_check([pkg / "src"], use_cache=False, baseline_path=baseline)
        assert [d.rule_id for d in report.findings] == ["BSHM001"]
        assert report.baselined == []

    def test_fingerprint_is_line_shift_stable(self):
        from repro.analysis.static import Diagnostic

        a = Diagnostic("src/x.py", 5, 1, "BSHM001", "m")
        b = Diagnostic("src/x.py", 50, 1, "BSHM001", "m")
        text = "    return a.arrival <= b.departure"
        assert fingerprint(a, text) == fingerprint(b, text)

    def test_malformed_baseline_raises(self, pkg):
        bad = pkg / "bshm-baseline.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(BaselineError):
            run_check([pkg / "src"], use_cache=False, baseline_path=bad)

    def test_loader_round_trip(self, pkg):
        baseline = pkg / "bshm-baseline.json"
        first = run_check([pkg / "src"], use_cache=False)
        write_baseline(baseline, first.findings, line_text_from_disk)
        fps = load_baseline(baseline)
        assert fps == {
            fingerprint(d, line_text_from_disk(d)) for d in first.findings
        }


def git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


class TestDiffMode:
    @pytest.fixture()
    def repo(self, tmp_path, monkeypatch):
        write_tree(
            tmp_path,
            {
                "src/repro/core/old.py": VIOLATION,
                "src/repro/core/touched.py": "def g():\n    return 1\n",
            },
        )
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", "-A")
        git(tmp_path, "commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_only_changed_lines_are_reported(self, repo):
        # add a violation to touched.py; old.py's pre-existing finding and
        # touched.py's unchanged line 2 must both be filtered out
        (repo / "src/repro/core/touched.py").write_text(
            "def g():\n"
            "    return 1\n"
            "def h(a, b):\n"
            "    return a.arrival <= b.departure\n"
        )
        report = run_check(["src"], use_cache=False, diff_base="HEAD")
        assert [(Path(d.path).name, d.line) for d in report.findings] == [
            ("touched.py", 4)
        ]

    def test_no_changes_reports_nothing(self, repo):
        report = run_check(["src"], use_cache=False, diff_base="HEAD")
        assert report.findings == []

    def test_changed_lines_parser(self, repo):
        (repo / "src/repro/core/touched.py").write_text(
            "def g():\n    return 2\n"
        )
        changed = git_changed_lines("HEAD", repo)
        assert changed == {"src/repro/core/touched.py": {2}}

    def test_bad_ref_raises(self, repo):
        with pytest.raises(ValueError):
            run_check(["src"], use_cache=False, diff_base="no-such-ref")
