"""Unit tests for ratios, metrics and table rendering."""

import pytest

from repro import Job, JobSet, dec_ladder, dec_offline, lower_bound
from repro.analysis.metrics import busy_machine_profile, compute_metrics
from repro.analysis.ratios import evaluate, evaluate_suite, theoretical_bounds
from repro.analysis.tables import render_table, to_csv
from repro.schedule.schedule import MachineKey, Schedule


class TestEvaluate:
    def test_single_run(self, dec3, small_jobs):
        run = evaluate("DEC-OFFLINE", __import__("repro").dec_offline, small_jobs, dec3)
        assert run.ratio >= 1.0 - 1e-9
        assert run.cost > 0
        assert run.n_jobs == 4
        row = run.row()
        assert row["algorithm"] == "DEC-OFFLINE"

    def test_shared_lb(self, dec3, small_jobs):
        lb = lower_bound(small_jobs, dec3).value
        run = evaluate(
            "x", __import__("repro").dec_offline, small_jobs, dec3, lb_value=lb
        )
        assert run.lower_bound == lb

    def test_suite(self, dec3, small_jobs):
        from repro import dec_offline, general_offline

        runs = evaluate_suite(
            {"a": dec_offline, "b": general_offline},
            {"w": (small_jobs, dec3)},
        )
        assert len(runs) == 2
        assert runs[0].lower_bound == runs[1].lower_bound

    def test_infeasible_detected(self, dec3, small_jobs):
        def broken(jobs, ladder):
            return Schedule(ladder, {})  # schedules nothing

        with pytest.raises(AssertionError):
            evaluate("broken", broken, small_jobs, dec3)

    def test_theoretical_bounds_table(self):
        bounds = theoretical_bounds(mu=4.0, m=9)
        assert bounds["DEC-OFFLINE"] == 14.0
        assert bounds["DEC-ONLINE"] == 32.0 * 5.0
        assert bounds["INC-ONLINE"] == pytest.approx(2.25 * 4 + 6.75)
        assert bounds["GEN-OFFLINE"] == pytest.approx(14.0 * 3.0)


class TestMetrics:
    def test_busy_profile(self, dec3):
        a = Job(0.5, 0, 4, name="a")
        b = Job(0.5, 2, 6, name="b")
        sched = Schedule(
            dec3, {a: MachineKey(1, ("m", 0)), b: MachineKey(1, ("m", 1))}
        )
        profile = busy_machine_profile(sched)
        assert float(profile(3.0)) == 2.0
        assert float(profile(5.0)) == 1.0
        assert busy_machine_profile(sched, type_index=2).max() == 0.0

    def test_compute_metrics(self, dec3, small_jobs):
        sched = dec_offline(small_jobs, dec3)
        metrics = compute_metrics(sched)
        assert metrics.cost == pytest.approx(sched.cost())
        assert 0 < metrics.utilization <= 1.0
        assert metrics.machines == len(sched.machines())
        assert sum(metrics.cost_by_type.values()) == pytest.approx(metrics.cost)


class TestTables:
    def test_render_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2.5, "b": "yy"}]
        text = render_table(rows, title="T")
        assert "T" in text
        assert "a" in text.splitlines()[1]
        assert "2.5" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_csv(self):
        rows = [{"a": 1, "b": 2.0}]
        csv = to_csv(rows)
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[1] == "1,2"

    def test_csv_empty(self):
        assert to_csv([]) == ""
