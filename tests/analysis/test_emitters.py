"""Emitter tests: SARIF 2.1.0 shape, JSON round-trip, text rendering."""

import json

from repro.analysis.static import RULES, Diagnostic, Severity, render
from repro.analysis.static.emitters import SARIF_VERSION

FINDING = Diagnostic(
    path="src/repro/core/foo.py",
    line=12,
    col=5,
    rule_id="BSHM001",
    message="closed-interval comparison",
    severity=Severity.ERROR,
)
BASELINED = Diagnostic(
    path="src/repro/service/bar.py",
    line=3,
    col=1,
    rule_id="BSHM011",
    message="ack before append",
    severity=Severity.ERROR,
)


class TestSarif:
    def sarif(self, findings=(FINDING,), baselined=(BASELINED,)):
        return json.loads(render("sarif", list(findings), list(baselined), 2))

    def test_envelope_shape(self):
        doc = self.sarif()
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "bshm-check"

    def test_full_rule_catalogue_as_descriptors(self):
        driver = self.sarif()["runs"][0]["tool"]["driver"]
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(RULES)
        for descriptor in driver["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["fullDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error",
                "warning",
            )

    def test_result_location_and_rule_index(self):
        run = self.sarif()["runs"][0]
        result = run["results"][0]
        assert result["ruleId"] == "BSHM001"
        assert result["level"] == "error"
        assert result["message"]["text"] == "closed-interval comparison"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/core/foo.py"
        assert loc["region"] == {"startLine": 12, "startColumn": 5}
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "BSHM001"

    def test_baselined_findings_carry_suppressions(self):
        results = self.sarif()["runs"][0]["results"]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(suppressed) == 1
        assert suppressed[0]["ruleId"] == "BSHM011"
        assert suppressed[0]["suppressions"][0]["kind"] == "external"
        live = [r for r in results if "suppressions" not in r]
        assert [r["ruleId"] for r in live] == ["BSHM001"]


class TestJson:
    def test_round_trips_through_diagnostics(self):
        doc = json.loads(render("json", [FINDING], [BASELINED], 7))
        assert doc["n_files"] == 7
        back = [Diagnostic.from_dict(d) for d in doc["findings"]]
        assert back == [FINDING]
        base_back = [Diagnostic.from_dict(d) for d in doc["baselined"]]
        assert base_back == [BASELINED]


class TestText:
    def test_counts_and_lines(self):
        out = render("text", [FINDING], [BASELINED], 2)
        assert FINDING.format() in out
        assert "1 finding(s) in 2 files" in out
        assert "1 baselined finding(s)" in out

    def test_clean_run(self):
        assert "2 files clean" in render("text", [], [], 2)

    def test_unknown_format_raises(self):
        try:
            render("xml", [], [], 0)
        except ValueError as exc:
            assert "xml" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
