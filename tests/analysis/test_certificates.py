"""Tests for the executable Theorem-2 proof machinery."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    DecOnlineScheduler,
    Job,
    JobSet,
    bounded_mu_workload,
    dec_ladder,
    lower_bound,
    run_online,
)
from repro.analysis.certificates import (
    certify_dec_online,
    interval_families,
    reference_configuration,
)
from tests.conftest import jobset_strategy


@pytest.fixture
def ladder():
    return dec_ladder(3)  # capacities 1, 3, 9; rates 1, 2, 4


class TestReferenceConfiguration:
    def test_p1_dominates_small_total(self, ladder):
        # one big job (size 5 -> type 3), tiny total: M(t) = chain + 1 type-3
        jobs = JobSet([Job(5.0, 0, 2)])
        config = reference_configuration(jobs, ladder)
        assert config.count_at(3, 1.0) == 1
        # chain below p1: (r2/r1 - 1) = 1 type-1, (r3/r2 - 1) = 1 type-2
        assert config.count_at(1, 1.0) == 1
        assert config.count_at(2, 1.0) == 1

    def test_p2_scales_with_total(self, ladder):
        # many small jobs totalling 18 -> p2 = 3, ceil(18/9) = 2 type-3
        jobs = JobSet([Job(0.9, 0, 2, name=f"j{i}") for i in range(20)])
        config = reference_configuration(jobs, ladder)
        assert config.count_at(3, 1.0) == 2

    def test_empty(self, ladder):
        config = reference_configuration(JobSet(), ladder)
        assert config.cost_rate.integral() == 0.0

    @settings(deadline=None, max_examples=30)
    @given(jobset_strategy(max_jobs=15, max_size=8.0))
    def test_property_lemma1(self, jobs):
        """rate(M(t)) <= 4 * optimal configuration rate, everywhere."""
        ladder = dec_ladder(3)
        config = reference_configuration(jobs, ladder)
        lb = lower_bound(jobs, ladder)
        for seg, opt_rate in zip(lb.segments, lb.rates):
            mid = (seg.left + seg.right) / 2
            assert float(config.cost_rate(mid)) <= 4.0 * opt_rate + 1e-9

    @settings(deadline=None, max_examples=20)
    @given(jobset_strategy(max_jobs=15, max_size=8.0))
    def test_property_m_covers_demand(self, jobs):
        """M(t) has enough capacity for all active jobs, and enough high-type
        capacity for the largest one (it is a valid relaxed configuration)."""
        ladder = dec_ladder(3)
        config = reference_configuration(jobs, ladder)
        for seg in jobs.segments():
            mid = (seg.left + seg.right) / 2
            active = [j for j in jobs if j.active_at(mid)]
            total_cap = sum(
                config.count_at(i, mid) * ladder.capacity(i)
                for i in range(1, 4)
            )
            assert total_cap >= max(j.size for j in active) - 1e-9


class TestIntervalFamilies:
    def test_families_nested_in_level(self, ladder):
        jobs = JobSet([Job(0.9, 0, 4, name=f"j{i}") for i in range(20)])
        config = reference_configuration(jobs, ladder)
        fams = interval_families(config, mu=1.0)
        for (i, j), (base, prime) in fams.items():
            if (i, j + 1) in fams:
                higher_base = fams[(i, j + 1)][0]
                for member in higher_base:
                    assert base.covers(member)

    def test_prime_extends_base(self, ladder):
        jobs = JobSet([Job(5.0, 0, 2)])
        config = reference_configuration(jobs, ladder)
        fams = interval_families(config, mu=2.0)
        base, prime = fams[(3, 1)]
        assert prime.length >= base.length
        assert prime.length <= (2.0 + 1.0) * base.length + 1e-9


class TestCertify:
    def test_certifies_random_runs(self, ladder):
        rng = np.random.default_rng(17)
        for mu in (1.0, 8.0):
            jobs = bounded_mu_workload(60, rng, mu=mu, max_size=ladder.capacity(3))
            sched = run_online(jobs, DecOnlineScheduler(ladder))
            cert = certify_dec_online(jobs, ladder, sched)
            assert cert.lemma1_holds
            assert not cert.lemma3_violations
            assert cert.actual_cost <= cert.certified_bound + 1e-6
            assert cert.certified_bound <= 32.0 * (jobs.mu + 1.0) * cert.lower_bound + 1e-6

    def test_rejects_foreign_schedule(self, ladder):
        """Schedules without DEC-ONLINE machine tags cannot be certified."""
        from repro import dec_offline

        jobs = JobSet([Job(0.5, 0, 2)])
        sched = dec_offline(jobs, ladder)
        with pytest.raises(ValueError, match="machine tags"):
            certify_dec_online(jobs, ladder, sched)

    @settings(deadline=None, max_examples=20)
    @given(jobset_strategy(max_jobs=15, max_size=8.0))
    def test_property_certificate_chain(self, jobs):
        ladder = dec_ladder(3)
        sched = run_online(jobs, DecOnlineScheduler(ladder))
        cert = certify_dec_online(jobs, ladder, sched)
        assert cert.lemma1_holds
        if cert.certified:
            assert cert.actual_cost <= cert.certified_bound + 1e-6
