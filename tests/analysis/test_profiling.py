"""Tests for the profiling instrumentation."""

import time

from repro.analysis.profiling import Profiler


class TestProfiler:
    def test_counters_accumulate(self):
        prof = Profiler()
        prof.count("x")
        prof.count("x", 2.5)
        assert prof.counters["x"] == 3.5

    def test_timer_accumulates(self):
        prof = Profiler()
        for _ in range(3):
            with prof.timer("sleepy"):
                time.sleep(0.001)
        rec = prof.timers["sleepy"]
        assert rec.calls == 3
        assert rec.total >= 0.003

    def test_timer_survives_exception(self):
        prof = Profiler()
        try:
            with prof.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert prof.timers["boom"].calls == 1

    def test_merge(self):
        a, b = Profiler(), Profiler()
        a.count("n", 1)
        b.count("n", 2)
        with b.timer("t"):
            pass
        a.merge(b)
        assert a.counters["n"] == 3
        assert a.timers["t"].calls == 1

    def test_table_and_reset(self):
        prof = Profiler()
        assert "(empty profiler)" in prof.table()
        prof.count("hits", 7)
        with prof.timer("work"):
            pass
        text = prof.table()
        assert "hits" in text and "work" in text
        prof.reset()
        assert "(empty profiler)" in prof.table()
