"""Tests for the crossover scanner."""

import numpy as np
import pytest

from repro import dec_ladder, dec_offline, poisson_workload, run_online
from repro.analysis.crossover import find_crossover
from repro.baselines.naive import LargestTypeFirstFit


def make_instance_factory(ladder):
    def make(rate, rng):
        return poisson_workload(
            30, rng, rate=float(rate), mean_duration=4.0,
            max_size=ladder.capacity(ladder.m) / 3.0,
        )

    return make


class TestCrossover:
    def test_scan_shape(self):
        ladder = dec_ladder(3)
        result = find_crossover(
            dec_offline,
            lambda j, l: run_online(j, LargestTypeFirstFit(l)),
            make_instance_factory(ladder),
            ladder,
            [0.1, 1.0, 5.0],
            seeds=1,
        )
        assert len(result.cost_a) == 3
        assert result.parameter_values == (0.1, 1.0, 5.0)
        rows = result.rows("A", "B")
        assert {r["winner"] for r in rows} <= {"A", "B"}

    def test_identical_schedulers_never_cross(self):
        ladder = dec_ladder(2)
        result = find_crossover(
            dec_offline,
            dec_offline,
            make_instance_factory(ladder),
            ladder,
            [0.2, 2.0],
            seeds=1,
        )
        assert result.crossings == ()
        assert result.cost_a == result.cost_b

    def test_values_sorted(self):
        ladder = dec_ladder(2)
        result = find_crossover(
            dec_offline,
            dec_offline,
            make_instance_factory(ladder),
            ladder,
            [5.0, 0.1],
            seeds=1,
        )
        assert result.parameter_values == (0.1, 5.0)

    def test_deterministic(self):
        ladder = dec_ladder(2)
        kwargs = dict(seeds=2, base_seed=3)
        args = (
            dec_offline,
            lambda j, l: run_online(j, LargestTypeFirstFit(l)),
            make_instance_factory(ladder),
            ladder,
            [0.2, 2.0],
        )
        a = find_crossover(*args, **kwargs)
        b = find_crossover(*args, **kwargs)
        assert a.cost_a == b.cost_a and a.cost_b == b.cost_b
