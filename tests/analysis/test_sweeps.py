"""Tests for the parameter-sweep utility."""

import pytest

from repro import dec_ladder, dec_offline, uniform_workload
from repro.analysis.sweeps import Sweep
from repro.online.dec_online import DecOnlineScheduler
from repro.online.engine import run_online


def make_instance(n, rng):
    ladder = dec_ladder(3)
    return uniform_workload(int(n), rng, max_size=ladder.capacity(3)), ladder


ALGOS = {
    "offline": dec_offline,
    "online": lambda j, l: run_online(j, DecOnlineScheduler(l)),
}


class TestSweep:
    def test_rows_shape(self):
        sweep = Sweep(parameter="n", values=(20, 40), seeds=2)
        rows = sweep.run(make_instance, ALGOS)
        assert len(rows) == 2 * len(ALGOS)
        for row in rows:
            assert row.min_ratio <= row.mean_ratio <= row.max_ratio
            assert row.seeds == 2

    def test_deterministic(self):
        sweep = Sweep(parameter="n", values=(25,), seeds=2)
        a = sweep.run(make_instance, ALGOS)
        b = sweep.run(make_instance, ALGOS)
        assert [r.mean_ratio for r in a] == [r.mean_ratio for r in b]

    def test_row_dict(self):
        sweep = Sweep(parameter="n", values=(20,), seeds=1)
        row = sweep.run(make_instance, ALGOS)[0].row()
        assert row["n"] == 20
        assert "ratio(mean)" in row

    def test_infeasible_algorithm_caught(self):
        from repro.schedule.schedule import Schedule

        sweep = Sweep(parameter="n", values=(10,), seeds=1)
        with pytest.raises(AssertionError):
            sweep.run(make_instance, {"broken": lambda j, l: Schedule(l, {})})
