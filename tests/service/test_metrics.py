"""Unit tests for the service metrics registry."""

import json

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("x")
        g.set(3.0)
        g.inc()
        g.dec(0.5)
        assert g.value == pytest.approx(3.5)


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in [1.0, 2.0, 3.0, 10.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0 and h.max == 10.0

    def test_percentiles_small(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(99) == pytest.approx(99.0)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_percentile(self):
        assert Histogram("lat").percentile(50) == 0.0

    def test_reservoir_bounded_and_deterministic(self):
        h = Histogram("lat", max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) < 64
        # decimation is deterministic: a second identical stream gives the
        # exact same reservoir
        h2 = Histogram("lat", max_samples=64)
        for v in range(10_000):
            h2.observe(float(v))
        assert h._samples == h2._samples
        # quantiles stay sane after decimation
        assert 4000.0 <= h.percentile(50) <= 6000.0


class TestRegistry:
    def test_get_or_create_and_kind_clash(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        assert reg.counter("events") is c
        with pytest.raises(TypeError):
            reg.gauge("events")

    def test_render_json_and_text(self):
        reg = MetricsRegistry()
        reg.counter("arrivals").inc(3)
        reg.gauge("active").set(2)
        reg.histogram("lat").observe(1.5)
        doc = json.loads(reg.render_json())
        assert doc["arrivals"] == {"kind": "counter", "value": 3}
        assert doc["active"]["value"] == 2.0
        assert doc["lat"]["count"] == 1
        text = reg.render_text()
        assert "arrivals" in text and "histogram" in text

    def test_empty_render(self):
        assert MetricsRegistry().render_text() == "(no metrics)"
