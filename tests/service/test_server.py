"""The JSON-lines server: in-process protocol tests plus a full subprocess
end-to-end smoke (the CI service job runs this file)."""

import asyncio
import json
import os
import socket
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import dec_ladder, run_online, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import load_checkpoint
from repro.service.runtime import SchedulerRuntime, make_scheduler
from repro.service.server import SchedulerServer

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def make_runtime():
    return SchedulerRuntime.create("dec", dec_ladder(3), admission=["fits-ladder"])


# ---------------------------------------------------------------------------
# synchronous protocol-level tests (no sockets)
# ---------------------------------------------------------------------------

class TestHandleLine:
    def test_submit_depart_stats(self):
        server = SchedulerServer(make_runtime())
        r = server.handle_line(json.dumps({"op": "submit", "size": 0.5, "t": 0.0}))
        assert r["ok"] and r["accepted"] and r["machine"].startswith("T")
        uid = r["uid"]
        r = server.handle_line(json.dumps({"op": "depart", "uid": uid, "t": 3.0}))
        assert r["ok"]
        r = server.handle_line(json.dumps({"op": "stats"}))
        assert r["ok"] and r["active"] == 0 and r["cost"] > 0
        assert r["metrics"]["arrivals"]["value"] == 1

    def test_rejection_is_reported_not_an_error(self):
        server = SchedulerServer(make_runtime())
        r = server.handle_line(json.dumps({"op": "submit", "size": 1e9, "t": 0.0}))
        assert r["ok"] and not r["accepted"] and "capacity" in r["reason"]

    def test_protocol_errors_are_structured(self):
        server = SchedulerServer(make_runtime())
        r = server.handle_line("")
        assert not r["ok"] and r["error"]["code"] == "bad-request"
        r = server.handle_line("{bad")
        assert r["error"]["code"] == "bad-request"
        assert "malformed" in r["error"]["message"]
        assert r["error"]["retryable"] is False
        r = server.handle_line(json.dumps({"op": "fly"}))
        assert r["error"]["code"] == "unknown-op"
        assert server.handle_line(json.dumps(["submit"]))["error"]["code"] == "bad-request"
        # missing params surface as an error response, not an exception
        r = server.handle_line(json.dumps({"op": "submit"}))
        assert not r["ok"] and r["error"]["code"] == "invalid-request"
        # time violations likewise
        server.handle_line(json.dumps({"op": "advance", "t": 10.0}))
        r = server.handle_line(json.dumps({"op": "advance", "t": 5.0}))
        assert not r["ok"] and r["error"]["code"] == "invalid-request"
        assert "backwards" in r["error"]["message"]

    def test_duplicate_uid_has_dedicated_code(self):
        server = SchedulerServer(make_runtime())
        r = server.handle_line(json.dumps({"op": "submit", "size": 0.5, "t": 0.0, "uid": 7}))
        assert r["ok"] and r["accepted"]
        r = server.handle_line(json.dumps({"op": "submit", "size": 0.5, "t": 1.0, "uid": 7}))
        assert not r["ok"]
        assert r["error"]["code"] == "duplicate-uid"
        assert r["error"]["uid"] == 7
        # a rejected submit also claims its uid: replaying it is a dup too
        r = server.handle_line(json.dumps({"op": "submit", "size": 1e9, "t": 2.0, "uid": 8}))
        assert r["ok"] and not r["accepted"]
        r = server.handle_line(json.dumps({"op": "submit", "size": 1e9, "t": 2.0, "uid": 8}))
        assert r["error"]["code"] == "duplicate-uid"

    def test_checkpoint_inline_and_schedule(self):
        server = SchedulerServer(make_runtime())
        server.handle_line(json.dumps({"op": "submit", "size": 0.5, "t": 0.0}))
        r = server.handle_line(json.dumps({"op": "checkpoint"}))
        assert r["ok"] and r["snapshot"]["version"] == 1
        r = server.handle_line(json.dumps({"op": "schedule"}))
        assert r["ok"] and r["jobs"] == 0  # open job at clock has zero length

    def test_shutdown_response(self):
        server = SchedulerServer(make_runtime())
        assert server.handle_line(json.dumps({"op": "shutdown"}))["bye"]


# ---------------------------------------------------------------------------
# in-process asyncio round-trip
# ---------------------------------------------------------------------------

async def _ask(reader, writer, request: dict) -> dict:
    writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


async def _roundtrip() -> dict:
    server = SchedulerServer(make_runtime())
    host, port = await server.start("127.0.0.1", 0)
    waiter = asyncio.create_task(server.wait_shutdown())
    reader, writer = await asyncio.open_connection(host, port)
    out = {}
    r = await _ask(reader, writer, {"op": "submit", "size": 2.0, "t": 1.0})
    out["submit"] = r
    r = await _ask(reader, writer, {"op": "depart", "uid": r["uid"], "t": 4.0})
    out["depart"] = r
    out["stats"] = await _ask(reader, writer, {"op": "stats"})
    out["bye"] = await _ask(reader, writer, {"op": "shutdown"})
    writer.close()
    await asyncio.wait_for(waiter, timeout=5)
    return out


class TestAsyncServer:
    def test_tcp_roundtrip_and_shutdown(self):
        out = asyncio.run(_roundtrip())
        assert out["submit"]["accepted"]
        assert out["depart"]["ok"]
        assert out["stats"]["cost"] > 0
        assert out["bye"]["bye"]


# ---------------------------------------------------------------------------
# robustness: disconnects, shedding, bounded reads
# ---------------------------------------------------------------------------

async def _abrupt_disconnect_then_reconnect():
    """Regression: a client that RSTs mid-exchange must not leak an
    unhandled ConnectionResetError or wedge the shared runtime."""
    unhandled = []
    loop = asyncio.get_running_loop()
    loop.set_exception_handler(lambda _loop, ctx: unhandled.append(ctx))
    server = SchedulerServer(make_runtime())
    host, port = await server.start("127.0.0.1", 0)
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b'{"op": "submit", "size": 0.5, "t": 0.0}\n')
    await writer.drain()
    writer.transport.abort()  # RST: no FIN, no read of the response
    for _ in range(100):
        if not server._conn_tasks:
            break
        await asyncio.sleep(0.01)
    # the server must still be healthy for fresh connections
    reader2, writer2 = await asyncio.open_connection(host, port)
    stats = await _ask(reader2, writer2, {"op": "stats"})
    writer2.close()
    await server.drain()
    return unhandled, stats


async def _overload_shed():
    """With one request stalled and max_inflight=1, the next request is
    shed with the retryable ``overloaded`` error."""
    from repro.service.faults import FaultInjector, FaultPlan, FaultPoint

    gate = asyncio.Event()
    injector = FaultInjector(FaultPlan.of(FaultPoint("stall", 1, arg=gate)))
    server = SchedulerServer(make_runtime(), faults=injector, max_inflight=1)
    host, port = await server.start("127.0.0.1", 0)
    reader1, writer1 = await asyncio.open_connection(host, port)
    writer1.write(b'{"op": "advance", "t": 1.0}\n')
    await writer1.drain()
    for _ in range(200):
        if server._inflight == 1:
            break
        await asyncio.sleep(0.005)
    assert server._inflight == 1, "stalled request never became in-flight"
    reader2, writer2 = await asyncio.open_connection(host, port)
    shed = await _ask(reader2, writer2, {"op": "stats"})
    gate.set()
    stalled = json.loads(await reader1.readline())
    after = await _ask(reader2, writer2, {"op": "stats"})
    writer1.close()
    writer2.close()
    await server.drain()
    return shed, stalled, after


async def _oversized_line():
    server = SchedulerServer(make_runtime(), max_line_bytes=256)
    host, port = await server.start("127.0.0.1", 0)
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b'{"op": "submit", "name": "' + b"x" * 1024 + b'"}\n')
    await writer.drain()
    response = json.loads(await reader.readline())
    eof = await reader.read()  # server hangs up after answering
    writer.close()
    await server.drain()
    return response, eof


async def _idle_timeout():
    server = SchedulerServer(make_runtime(), read_timeout=0.05)
    host, port = await server.start("127.0.0.1", 0)
    reader, writer = await asyncio.open_connection(host, port)
    response = json.loads(await asyncio.wait_for(reader.readline(), timeout=5))
    writer.close()
    await server.drain()
    return response


class TestServerRobustness:
    def test_abrupt_disconnect_is_handled(self):
        unhandled, stats = asyncio.run(_abrupt_disconnect_then_reconnect())
        assert unhandled == []
        assert stats["ok"]

    def test_overload_shedding(self):
        shed, stalled, after = asyncio.run(_overload_shed())
        assert not shed["ok"]
        assert shed["error"]["code"] == "overloaded"
        assert shed["error"]["retryable"] is True
        assert shed["error"]["retry_after_ms"] > 0
        assert stalled["ok"]  # the stalled request still completed
        assert after["ok"]
        assert after["metrics"]["shed_requests"]["value"] == 1

    def test_line_too_long(self):
        response, eof = asyncio.run(_oversized_line())
        assert response["error"]["code"] == "line-too-long"
        assert eof == b""

    def test_idle_read_timeout(self):
        response = asyncio.run(_idle_timeout())
        assert response["error"]["code"] == "idle-timeout"


# ---------------------------------------------------------------------------
# subprocess end-to-end: the CI smoke (bshm serve <- 50-job trace over TCP)
# ---------------------------------------------------------------------------

class TestServeEndToEnd:
    def test_cli_serve_50_job_trace_matches_batch(self, tmp_path):
        ladder = dec_ladder(3)
        jobs = uniform_workload(50, np.random.default_rng(11), max_size=ladder.capacity(3))
        expected = run_online(jobs, make_scheduler("dec", ladder)).cost()

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--ladder-kind", "dec", "--m", "3", "--scheduler", "dec"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            host, port = banner.rsplit(" ", 1)[-1].strip().rsplit(":", 1)

            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.settimeout(10)
                fh = sock.makefile("rw", encoding="utf-8", newline="\n")

                def ask(request):
                    fh.write(json.dumps(request) + "\n")
                    fh.flush()
                    return json.loads(fh.readline())

                for ev in event_stream(jobs):
                    if ev.kind is EventKind.ARRIVE:
                        r = ask({"op": "submit", "size": ev.job.size,
                                 "t": ev.job.arrival, "uid": ev.job.uid,
                                 "name": ev.job.name})
                        assert r["ok"] and r["accepted"], r
                    else:
                        r = ask({"op": "depart", "uid": ev.job.uid,
                                 "t": ev.job.departure})
                        assert r["ok"], r

                stats = ask({"op": "stats"})
                assert stats["ok"] and stats["active"] == 0
                # schedule cost must match batch run_online exactly (same
                # kernel); the running-accumulator stat agrees to float noise
                sched_resp = ask({"op": "schedule"})
                assert sched_resp["cost"] == expected
                assert abs(stats["cost"] - expected) <= 1e-9 * max(1.0, expected)

                ckpt = tmp_path / "server.ckpt.json"
                r = ask({"op": "checkpoint", "path": str(ckpt)})
                assert r["ok"] and ckpt.exists()

                bye = ask({"op": "shutdown"})
                assert bye["bye"]
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

        # the checkpoint written over the wire restores to the same cost
        restored = load_checkpoint(ckpt)
        assert restored.schedule().cost() == expected
