"""The write-ahead log: framing, torn tails, compaction, metrics.

The durability contract: the WAL directory always recovers to a *prefix*
of the logical event stream; a torn final record is truncated silently,
anything worse fails loudly; after compaction, restore cost is
O(state) + O(delta) rather than O(all events ever).
"""

import json
import struct
import zlib

import pytest

from repro import SchedulerRuntime, dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import CheckpointError, assignment_digest
from repro.service.metrics import MetricsRegistry
from repro.service.server import SchedulerServer
from repro.service.wal import WALError, WALWriter, recover


def make_runtime(metrics=None):
    return SchedulerRuntime.create(
        "dec", dec_ladder(3), admission=["fits-ladder"], metrics=metrics
    )


def drive_with_wal(rt, wal, jobs, *, stop_after=None):
    for i, ev in enumerate(event_stream(jobs)):
        if stop_after is not None and i >= stop_after:
            break
        if ev.kind is EventKind.ARRIVE:
            rt.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
        else:
            rt.depart(ev.job.uid, ev.job.departure)
        wal.append_new()


@pytest.fixture
def jobs(rng):
    ladder = dec_ladder(3)
    return uniform_workload(40, rng, max_size=ladder.capacity(3))


class TestAppendRecover:
    @pytest.mark.parametrize("fsync", ["always", "batch", "never"])
    def test_clean_shutdown_recovers_identically(self, fsync, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, fsync=fsync, batch_every=4)
        drive_with_wal(rt, wal, jobs)
        wal.close()
        rec = recover(tmp_path / "wal")
        assert rec.n_events == rt.n_events
        assert rec.runtime.cost() == rt.cost()
        assert rec.runtime.clock == rt.clock
        assert assignment_digest(rec.runtime) == assignment_digest(rt)

    def test_rotation_spreads_segments(self, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, segment_records=10)
        drive_with_wal(rt, wal, jobs)
        wal.close()
        segments = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert len(segments) == rt.n_events // 10 + 1
        rec = recover(tmp_path / "wal")
        assert rec.n_events == rt.n_events
        assert rec.segments == len(segments)

    def test_compaction_prunes_and_restores_o_delta(self, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(
            tmp_path / "wal", rt, segment_records=8, compact_every=20
        )
        drive_with_wal(rt, wal, jobs)
        wal.close()
        wal_dir = tmp_path / "wal"
        snaps = sorted(wal_dir.glob("snapshot-*.json"))
        assert len(snaps) == 1  # older snapshots pruned
        rec = recover(wal_dir)
        assert rec.snapshot_n is not None
        assert rec.replayed == rt.n_events - rec.snapshot_n
        assert rec.replayed < 20  # the delta, not the full history
        assert rec.runtime.cost() == rt.cost()
        # every surviving segment starts at or after the snapshot
        for seg in wal_dir.glob("wal-*.log"):
            assert int(seg.name[4:-4]) >= rec.snapshot_n

    def test_recovered_runtime_continues_identically(self, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, compact_every=15)
        events = list(event_stream(jobs))
        drive_with_wal(rt, wal, jobs, stop_after=len(events) // 2)
        wal.close()
        rec = recover(tmp_path / "wal")
        for ev in events[len(events) // 2:]:
            for r in (rt, rec.runtime):
                if ev.kind is EventKind.ARRIVE:
                    r.submit(ev.job.size, ev.job.arrival,
                             name=ev.job.name, uid=ev.job.uid)
                else:
                    r.depart(ev.job.uid, ev.job.departure)
        assert assignment_digest(rec.runtime) == assignment_digest(rt)
        assert rec.runtime.cost() == rt.cost()

    def test_empty_dir_needs_config(self, tmp_path):
        (tmp_path / "wal").mkdir()
        with pytest.raises(WALError, match="no recoverable data"):
            recover(tmp_path / "wal")
        rt = make_runtime()
        rec = recover(tmp_path / "wal", config=rt.config)
        assert rec.n_events == 0

    def test_missing_dir_is_loud(self, tmp_path):
        with pytest.raises(WALError, match="no WAL directory"):
            recover(tmp_path / "nope")


class TestTornTail:
    def _write_some(self, tmp_path, jobs, n=10):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, fsync="always")
        drive_with_wal(rt, wal, jobs, stop_after=n)
        wal.close()
        return rt, sorted((tmp_path / "wal").glob("wal-*.log"))[-1]

    def test_truncated_tail_is_recovered(self, jobs, tmp_path):
        rt, segment = self._write_some(tmp_path, jobs)
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # tear the last record mid-frame
        rec = recover(tmp_path / "wal")
        assert rec.truncated_bytes > 0
        assert rec.n_events == rt.n_events - 1
        # the torn bytes are physically gone: a second recover is clean
        rec2 = recover(tmp_path / "wal")
        assert rec2.truncated_bytes == 0
        assert rec2.n_events == rec.n_events

    def test_crc_mismatch_at_eof_is_torn(self, jobs, tmp_path):
        rt, segment = self._write_some(tmp_path, jobs)
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF  # flip a payload bit inside the final record
        segment.write_bytes(bytes(data))
        rec = recover(tmp_path / "wal")
        assert rec.truncated_bytes > 0
        assert rec.n_events == rt.n_events - 1

    def test_midstream_corruption_is_loud(self, jobs, tmp_path):
        _rt, segment = self._write_some(tmp_path, jobs)
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF  # damage an interior record
        segment.write_bytes(bytes(data))
        with pytest.raises(WALError, match="corrupt"):
            recover(tmp_path / "wal")

    def test_torn_nonfinal_segment_is_loud(self, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, segment_records=5)
        drive_with_wal(rt, wal, jobs, stop_after=12)
        wal.close()
        segments = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert len(segments) >= 2
        first = segments[0]
        first.write_bytes(first.read_bytes()[:-4])  # tear an OLD segment
        with pytest.raises(WALError, match="corrupt"):
            recover(tmp_path / "wal")

    def test_garbled_payload_with_valid_crc_is_loud(self, jobs, tmp_path):
        _rt, segment = self._write_some(tmp_path, jobs)
        payload = b"this is not json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with open(segment, "ab") as fh:
            fh.write(frame)
            fh.write(frame)  # two frames: not a torn tail, real damage
        with pytest.raises(WALError, match="garbled"):
            recover(tmp_path / "wal")

    def test_unknown_wal_version_rejected(self, jobs, tmp_path):
        rt = make_runtime()
        wal_dir = tmp_path / "wal"
        WALWriter(wal_dir, rt).close()
        segment = sorted(wal_dir.glob("wal-*.log"))[-1]
        header = {"kind": "wal-segment", "version": 99, "base": 0,
                  "config": rt.config}
        payload = json.dumps(header, sort_keys=True).encode()
        segment.write_bytes(
            struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        )
        with pytest.raises(WALError, match="version"):
            recover(wal_dir)

    def test_interrupted_compaction_tmp_is_ignored(self, jobs, tmp_path):
        rt, _segment = self._write_some(tmp_path, jobs)
        tmp = tmp_path / "wal" / "snapshot-0000000000000099.json.tmp"
        tmp.write_text("{half a snapsh")
        rec = recover(tmp_path / "wal")
        assert rec.n_events == rt.n_events
        assert not tmp.exists()  # cleaned up, never trusted


class TestWALMetrics:
    def test_counters_and_histogram(self, jobs, tmp_path):
        metrics = MetricsRegistry()
        rt = make_runtime(metrics)
        wal = WALWriter(tmp_path / "wal", rt, fsync="always")
        drive_with_wal(rt, wal, jobs, stop_after=12)
        wal.close()
        assert metrics.counter("wal_appends").value == 12
        # header fsync + one per append + the closing fsync
        assert metrics.counter("wal_fsyncs").value == 14
        hist = metrics.histogram("fsync_latency").as_dict()
        assert hist["count"] == 14

        recovery_metrics = MetricsRegistry()
        recover(tmp_path / "wal", metrics=recovery_metrics)
        assert recovery_metrics.counter("wal_recovered_records").value == 12

    def test_wal_metrics_visible_via_stats_op(self, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, fsync="always")
        server = SchedulerServer(rt, wal=wal)
        r = server.handle_line(json.dumps({"op": "submit", "size": 0.5, "t": 0.0}))
        assert r["ok"]
        wal.append_new()  # the async path does this after each ok response
        stats = server.handle_line(json.dumps({"op": "stats"}))
        m = stats["metrics"]
        assert m["wal_appends"]["value"] == 1
        assert m["wal_fsyncs"]["value"] >= 1
        assert m["fsync_latency"]["count"] >= 1
        assert m["shed_requests"]["value"] == 0
        wal.close()


class TestHistoryRefusal:
    def test_wal_restored_runtime_refuses_trace(self, jobs, tmp_path):
        rt = make_runtime()
        wal = WALWriter(tmp_path / "wal", rt, compact_every=10)
        drive_with_wal(rt, wal, jobs, stop_after=25)
        wal.close()
        rec = recover(tmp_path / "wal")
        assert rec.runtime.history_truncated
        from repro.service.checkpoint import record_trace
        with pytest.raises(CheckpointError, match="WAL"):
            record_trace(rec.runtime)
