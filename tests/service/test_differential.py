"""The acceptance-criterion differential: batch == streaming, exactly.

For every workload generator and every registered online scheduler, driving
the streaming :class:`SchedulerRuntime` event by event must produce a
:class:`Schedule` with cost *exactly* equal (``==``, no tolerance) to the
batch :func:`run_online` replay, with an identical uid -> machine
assignment — and ``replay(record(run))`` must reproduce it bit-for-bit.
"""

import numpy as np
import pytest

from repro import (
    bursty_workload,
    day_night_workload,
    dec_ladder,
    flash_crowd_workload,
    inc_ladder,
    mmpp_workload,
    paper_fig2_ladder,
    poisson_workload,
    run_online,
    uniform_workload,
)
from repro.core.events import EventKind, event_stream
from repro.schedule.validate import assert_feasible
from repro.service.checkpoint import record_trace, replay_trace
from repro.service.runtime import SchedulerRuntime, make_scheduler

GENERATORS = {
    "uniform": uniform_workload,
    "poisson": poisson_workload,
    "day-night": day_night_workload,
    "bursty": bursty_workload,
    "mmpp": mmpp_workload,
    "flash-crowd": flash_crowd_workload,
}

# scheduler wire name -> the ladder regime it is analyzed for
SCHEDULER_LADDERS = {
    "dec": lambda: dec_ladder(3),
    "inc": lambda: inc_ladder(3),
    "general": paper_fig2_ladder,
    "first-fit": lambda: dec_ladder(2),
}


def stream(runtime, jobs):
    for ev in event_stream(jobs):
        if ev.kind is EventKind.ARRIVE:
            adm = runtime.submit(
                ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid
            )
            assert adm.accepted
        else:
            runtime.depart(ev.job.uid, ev.job.departure)


@pytest.mark.parametrize("gen_name", sorted(GENERATORS))
@pytest.mark.parametrize("sched_name", sorted(SCHEDULER_LADDERS))
def test_streaming_equals_batch(gen_name, sched_name):
    ladder = SCHEDULER_LADDERS[sched_name]()
    rng = np.random.default_rng(20_26)
    jobs = GENERATORS[gen_name](50, rng, max_size=ladder.capacity(ladder.m))

    batch = run_online(jobs, make_scheduler(sched_name, ladder))
    runtime = SchedulerRuntime.create(sched_name, ladder)
    stream(runtime, jobs)
    streamed = runtime.schedule()

    assert streamed.cost() == batch.cost()  # exact equality, no tolerance
    assert {(j.uid, k) for j, k in batch.assignment.items()} == {
        (j.uid, k) for j, k in streamed.assignment.items()
    }
    assert_feasible(streamed, jobs)
    # the running accumulator agrees with the finished schedule (different
    # sweep kernels: per-machine union vs one grouped sweep — bit-equality
    # is not guaranteed between them, only between like kernels)
    assert runtime.cost() == pytest.approx(streamed.cost(), rel=1e-12, abs=1e-12)

    # record -> replay reproduces the identical run, byte for byte
    lines = record_trace(runtime)
    replayed = replay_trace(lines)
    assert replayed.schedule().cost() == streamed.cost()
    assert {(j.uid, k) for j, k in replayed.schedule().assignment.items()} == {
        (j.uid, k) for j, k in streamed.assignment.items()
    }
    assert record_trace(replayed) == lines
