"""Full-state snapshots: O(state) restore must be placement-equivalent.

The contract under test: a runtime rebuilt by ``restore_state`` makes
bit-identical decisions on any future event stream, even though no event
was replayed — exact float loads, uid bookkeeping, busy intervals and
pool contents all survive the round trip.
"""

import json

import pytest

from repro import SchedulerRuntime, dec_ladder, inc_ladder, uniform_workload
from repro.machines.catalog import ec2_like_ladder
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import (
    CheckpointError,
    assignment_digest,
    record_trace,
    snapshot,
)
from repro.service.state import capture_state, restore_state

from .test_checkpoint import drive

LADDERS = {
    "dec": dec_ladder(3),
    "inc": inc_ladder(3),
    "general": ec2_like_ladder(4),
    "first-fit": dec_ladder(3),
}


def make_driven(name, rng, n=40):
    ladder = LADDERS[name]
    cap = max(ladder.capacity(i) for i in range(1, ladder.m + 1))
    jobs = uniform_workload(n, rng, max_size=cap)
    rt = SchedulerRuntime.create(name, ladder, admission=["fits-ladder"])
    events = list(event_stream(jobs))
    half = len(events) // 2
    drive(rt, jobs, stop_after=half)
    return rt, events[half:]


@pytest.mark.parametrize("name", sorted(LADDERS))
class TestStateRoundTrip:
    def test_restore_matches_capture(self, name, rng):
        rt, _rest = make_driven(name, rng)
        state = json.loads(json.dumps(capture_state(rt)))  # through JSON
        restored = restore_state(state)
        assert restored.cost() == rt.cost()
        assert restored.clock == rt.clock
        assert restored.n_events == rt.n_events
        assert restored.active_uids() == rt.active_uids()
        assert assignment_digest(restored) == assignment_digest(rt)
        assert restored.busy_machines_by_type() == rt.busy_machines_by_type()

    def test_continuation_is_bit_identical(self, name, rng):
        """The heart of the contract: both runtimes, fed the same future,
        land every job on the same machine at the same cost."""
        rt, rest = make_driven(name, rng)
        restored = restore_state(capture_state(rt))
        for ev in rest:
            for r in (rt, restored):
                if ev.kind is EventKind.ARRIVE:
                    r.submit(ev.job.size, ev.job.arrival,
                             name=ev.job.name, uid=ev.job.uid)
                else:
                    r.depart(ev.job.uid, ev.job.departure)
        assert restored.cost() == rt.cost()
        assert assignment_digest(restored) == assignment_digest(rt)
        assert restored.schedule().cost() == rt.schedule().cost()

    def test_deterministic_counters_survive(self, name, rng):
        rt, _ = make_driven(name, rng)
        restored = restore_state(capture_state(rt))
        for counter in ("arrivals", "departures", "rejections"):
            assert (restored.metrics.counter(counter).value
                    == rt.metrics.counter(counter).value)


class TestStateRefusals:
    def test_restored_runtime_has_truncated_history(self, rng):
        rt, _ = make_driven("dec", rng)
        restored = restore_state(capture_state(rt))
        assert restored.history_truncated
        assert restored.events == ()  # memory holds only post-restore events
        with pytest.raises(CheckpointError, match="WAL"):
            record_trace(restored)
        with pytest.raises(CheckpointError, match="WAL"):
            snapshot(restored)
        with pytest.raises(ValueError, match="truncated"):
            restored.events_since(0) if restored.n_events else None

    def test_tampered_state_fails_verification(self, rng):
        rt, _ = make_driven("dec", rng)
        state = capture_state(rt)
        state["verify"]["cost"] += 1.0
        with pytest.raises(CheckpointError, match="self-verification"):
            restore_state(state)

    def test_unknown_version_rejected(self, rng):
        rt, _ = make_driven("dec", rng)
        state = capture_state(rt)
        state["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            restore_state(state)

    def test_not_a_state_snapshot(self):
        with pytest.raises(CheckpointError, match="bshm-state"):
            restore_state({"kind": "something-else"})

    def test_pool_mismatch_rejected(self, rng):
        rt, _ = make_driven("dec", rng)
        state = capture_state(rt)
        state["pools"]["bogus"] = []
        with pytest.raises(CheckpointError, match="pools"):
            restore_state(state)

    def test_state_snapshot_is_json_safe(self, rng):
        rt, _ = make_driven("general", rng)
        json.dumps(capture_state(rt))
