"""Unit tests for the incremental SchedulerRuntime."""

import math

import pytest

from repro import (
    DecOnlineScheduler,
    JobView,
    MachineKey,
    SchedulerRuntime,
    dec_ladder,
    single_type_ladder,
)
from repro.schedule.validate import assert_feasible
from repro.service.runtime import (
    AdmissionError,
    make_scheduler,
    max_active_policy,
)


class TestLifecycle:
    def test_submit_depart_schedule(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        adm = rt.submit(0.5, 0.0, name="a")
        assert adm.accepted and isinstance(adm.machine, MachineKey)
        assert rt.n_active == 1
        rt.depart(adm.uid, 4.0)
        assert rt.n_active == 0
        sched = rt.schedule()
        assert len(sched) == 1
        assert sched.cost() == pytest.approx(4.0 * dec3.rate(adm.machine.type_index))

    def test_uids_auto_assigned_and_explicit(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        a = rt.submit(0.5, 0.0)
        b = rt.submit(0.5, 0.0, uid=41)
        c = rt.submit(0.5, 0.0)
        assert len({a.uid, b.uid, c.uid}) == 3
        assert b.uid == 41

    def test_duplicate_uid_rejected(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        rt.submit(0.5, 0.0, uid=7)
        with pytest.raises(AdmissionError, match="duplicate"):
            rt.submit(0.5, 1.0, uid=7)

    def test_time_monotonicity_enforced(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        rt.submit(0.5, 5.0)
        with pytest.raises(AdmissionError, match="backwards"):
            rt.submit(0.5, 4.0)
        with pytest.raises(AdmissionError, match="backwards"):
            rt.advance(1.0)

    def test_depart_unknown_uid(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        with pytest.raises(AdmissionError, match="unknown"):
            rt.depart(99, 1.0)

    def test_depart_before_arrival_rejected(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        adm = rt.submit(0.5, 3.0)
        with pytest.raises(AdmissionError, match="arrival"):
            rt.depart(adm.uid, 3.0)
        # the job is still open and can depart properly afterwards
        rt.depart(adm.uid, 3.5)
        assert rt.n_active == 0

    def test_bad_size_rejected(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        with pytest.raises(AdmissionError, match="size"):
            rt.submit(-1.0, 0.0)
        with pytest.raises(AdmissionError, match="finite"):
            rt.submit(1.0, math.inf)

    def test_half_open_handoff(self):
        """Departure at t then arrival at t share a single-capacity machine."""
        ladder = single_type_ladder(capacity=1.0)
        rt = SchedulerRuntime(make_scheduler("first-fit", ladder))
        a = rt.submit(1.0, 0.0)
        rt.depart(a.uid, 5.0)
        b = rt.submit(1.0, 5.0)  # same instant: capacity was already released
        assert b.accepted
        rt.depart(b.uid, 9.0)
        sched = rt.schedule()
        assert_feasible(sched, sched.jobs)
        assert sched.cost() == pytest.approx(9.0)

    def test_non_clairvoyance_structural(self, dec3):
        seen = []

        class Spy(DecOnlineScheduler):
            def on_arrival(self, job):
                seen.append(job)
                return super().on_arrival(job)

        rt = SchedulerRuntime(Spy(dec3))
        rt.submit(0.5, 0.0)
        assert isinstance(seen[0], JobView)
        assert not hasattr(seen[0], "departure")

    def test_bad_scheduler_return_type(self, dec3):
        class Bad:
            ladder = dec3

            def on_arrival(self, job):
                return "machine-1"

            def on_departure(self, uid):
                pass

        rt = SchedulerRuntime(Bad())
        with pytest.raises(TypeError):
            rt.submit(0.5, 0.0)


class TestRunningCost:
    def test_cost_accumulates_incrementally(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        assert rt.cost() == 0.0
        a = rt.submit(0.5, 0.0)
        rate = dec3.rate(a.machine.type_index)
        rt.advance(2.0)
        assert rt.cost() == pytest.approx(2.0 * rate)  # open job counted to clock
        rt.depart(a.uid, 3.0)
        assert rt.cost() == pytest.approx(3.0 * rate)

    def test_cost_matches_schedule_cost_midstream(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        rt.submit(0.5, 0.0, uid=1)
        rt.submit(2.0, 1.0, uid=2)
        rt.depart(1, 4.0)
        rt.advance(6.0)  # uid 2 still open
        assert rt.cost() == pytest.approx(rt.schedule().cost())

    def test_schedule_omits_zero_length_provisional_jobs(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        rt.submit(0.5, 0.0, uid=1)
        rt.submit(0.5, 2.0, uid=2)  # arrives exactly at the clock
        sched = rt.schedule()  # horizon == clock == 2.0
        assert {j.uid for j in sched.jobs} == {1}

    def test_busy_machines_by_type(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        a = rt.submit(0.5, 0.0)
        assert sum(rt.busy_machines_by_type().values()) == 1
        rt.depart(a.uid, 1.0)
        assert rt.busy_machines_by_type() == {}


class TestAdmission:
    def test_fits_ladder_policy_rejects_oversize(self, dec3):
        rt = SchedulerRuntime(
            DecOnlineScheduler(dec3), admission=["fits-ladder"]
        )
        adm = rt.submit(dec3.capacity(dec3.m) * 10, 0.0)
        assert not adm.accepted
        assert "capacity" in adm.reason
        assert rt.metrics.counter("rejections").value == 1
        # rejected jobs never appear in the schedule, and their departure
        # is a tolerated no-op
        rt.depart(adm.uid, 1.0)
        assert len(rt.schedule()) == 0

    def test_max_active_policy(self, dec3):
        rt = SchedulerRuntime(
            DecOnlineScheduler(dec3), admission=[("max-active", 2)]
        )
        a = rt.submit(0.5, 0.0)
        b = rt.submit(0.5, 0.0)
        c = rt.submit(0.5, 1.0)
        assert a.accepted and b.accepted and not c.accepted
        rt.depart(a.uid, 2.0)
        d = rt.submit(0.5, 3.0)
        assert d.accepted

    def test_callable_policy(self, dec3):
        def no_big_jobs(view, runtime):
            return "too big for us" if view.size > 1.0 else None

        rt = SchedulerRuntime(DecOnlineScheduler(dec3), admission=[no_big_jobs])
        assert rt.submit(0.5, 0.0).accepted
        assert not rt.submit(2.0, 0.0).accepted

    def test_callable_policy_blocks_create(self, dec3):
        with pytest.raises(ValueError, match="declarative"):
            SchedulerRuntime.create("dec", dec3, admission=[max_active_policy(3)])

    def test_unknown_policy_spec(self, dec3):
        with pytest.raises(ValueError, match="unknown admission policy"):
            SchedulerRuntime(DecOnlineScheduler(dec3), admission=["nope"])


class TestMetricsSampling:
    def test_counters_and_gauges(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        a = rt.submit(0.5, 0.0)
        rt.submit(0.5, 0.5)
        assert rt.metrics.counter("arrivals").value == 2
        assert rt.metrics.gauge("active_jobs").value == 2
        rt.depart(a.uid, 1.0)
        assert rt.metrics.counter("departures").value == 1
        assert rt.metrics.gauge("active_jobs").value == 1
        hist = rt.metrics.histogram("decision_latency_ms")
        assert hist.count == 2
        assert hist.min >= 0.0

    def test_placement_probes_sampled_per_decision(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))
        a = rt.submit(0.5, 0.0)
        rt.submit(0.5, 0.5)
        counter = rt.metrics.counter("placement_probes")
        hist = rt.metrics.histogram("probe_depth")
        assert hist.count == 2  # one observation per accepted decision
        assert counter.value >= 1  # at least one index probe happened
        assert counter.value == rt.scheduler.state.stats.probes
        # probes accumulate only on submit; departures don't probe
        before = counter.value
        rt.depart(a.uid, 1.0)
        assert counter.value == before

    def test_rejected_jobs_observe_no_probe_depth(self, dec3):
        rt = SchedulerRuntime(
            DecOnlineScheduler(dec3), admission=["fits-ladder"]
        )
        big = dec3.capacity(dec3.m) * 10
        assert not rt.submit(big, 0.0).accepted
        assert rt.metrics.histogram("probe_depth").count == 0

    def test_schedulers_without_stats_skip_probe_metrics(self, dec3):
        class Opaque:
            ladder = dec3

            def on_arrival(self, view):
                return MachineKey(1, ("solo", view.uid))

            def on_departure(self, uid):
                return None

        rt = SchedulerRuntime(Opaque())
        rt.submit(0.5, 0.0)
        assert "placement_probes" not in rt.metrics.names()

    def test_make_scheduler_unknown_name(self, dec3):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("magic", dec3)
