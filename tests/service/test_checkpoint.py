"""Record/replay and snapshot/restore: determinism is the contract."""

import json

import numpy as np
import pytest

from repro import (
    DecOnlineScheduler,
    SchedulerRuntime,
    dec_ladder,
    uniform_workload,
)
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_trace,
    record_trace,
    replay_trace,
    restore,
    snapshot,
    write_checkpoint,
    write_trace,
)


def drive(runtime, jobs, *, stop_after=None):
    """Feed a batch instance into a runtime in canonical event order."""
    for i, ev in enumerate(event_stream(jobs)):
        if stop_after is not None and i >= stop_after:
            return
        if ev.kind is EventKind.ARRIVE:
            runtime.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
        else:
            runtime.depart(ev.job.uid, ev.job.departure)


@pytest.fixture
def driven_runtime(rng):
    ladder = dec_ladder(3)
    jobs = uniform_workload(40, rng, max_size=ladder.capacity(3))
    rt = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
    drive(rt, jobs)
    return rt


class TestTrace:
    def test_replay_reproduces_schedule_and_cost(self, driven_runtime):
        lines = record_trace(driven_runtime)
        replayed = replay_trace(lines)
        original = driven_runtime.schedule()
        again = replayed.schedule()
        assert again.cost() == original.cost()  # exact, not approx
        assert {(j.uid, k) for j, k in original.assignment.items()} == {
            (j.uid, k) for j, k in again.assignment.items()
        }

    def test_rerecord_is_byte_identical(self, driven_runtime):
        lines = record_trace(driven_runtime)
        assert record_trace(replay_trace(lines)) == lines

    def test_trace_file_roundtrip(self, driven_runtime, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace(driven_runtime, path)
        replayed = replay_trace(path)
        assert replayed.cost() == driven_runtime.cost()
        header, events = read_trace(path)
        assert header["version"] == 1
        assert len(events) == driven_runtime.n_events

    def test_unversioned_or_future_trace_rejected(self, driven_runtime):
        lines = record_trace(driven_runtime)
        header = json.loads(lines[0])
        header["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            replay_trace([json.dumps(header)] + lines[1:])

    def test_headerless_trace_rejected(self, driven_runtime):
        lines = record_trace(driven_runtime)
        with pytest.raises(CheckpointError, match="header"):
            replay_trace(lines[1:])

    def test_empty_and_malformed(self):
        with pytest.raises(CheckpointError, match="empty"):
            replay_trace([])
        with pytest.raises(CheckpointError, match="malformed"):
            replay_trace(["{not json"])

    def test_unserializable_runtime_refuses_to_record(self, dec3):
        rt = SchedulerRuntime(DecOnlineScheduler(dec3))  # no config
        rt.submit(0.5, 0.0)
        with pytest.raises(CheckpointError, match="config"):
            record_trace(rt)


class TestCheckpoint:
    def test_snapshot_restore_midstream_then_continue(self, rng):
        ladder = dec_ladder(3)
        jobs = uniform_workload(30, rng, max_size=ladder.capacity(3))
        events = list(event_stream(jobs))
        half = len(events) // 2

        rt = SchedulerRuntime.create("dec", ladder)
        drive(rt, jobs, stop_after=half)
        restored = restore(snapshot(rt))
        assert restored.cost() == rt.cost()
        assert restored.active_uids() == rt.active_uids()

        # continuing BOTH runtimes with the remaining events must agree
        for ev in events[half:]:
            for r in (rt, restored):
                if ev.kind is EventKind.ARRIVE:
                    r.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
                else:
                    r.depart(ev.job.uid, ev.job.departure)
        assert restored.schedule().cost() == rt.schedule().cost()
        assert restored.cost() == rt.cost()

    def test_checkpoint_file_roundtrip(self, driven_runtime, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(driven_runtime, path)
        restored = load_checkpoint(path)
        assert restored.cost() == driven_runtime.cost()

    def test_tampered_checkpoint_fails_verification(self, driven_runtime):
        snap = snapshot(driven_runtime)
        snap["state"]["cost"] += 1.0
        with pytest.raises(CheckpointError, match="self-verification"):
            restore(snap)

    def test_tampered_events_fail_digest(self, driven_runtime):
        snap = snapshot(driven_runtime)
        # drop the last event: derived state no longer matches
        snap["events"] = snap["events"][:-1]
        with pytest.raises(CheckpointError):
            restore(snap)

    def test_future_version_rejected(self, driven_runtime):
        snap = snapshot(driven_runtime)
        snap["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            restore(snap)

    def test_snapshot_is_json_serializable(self, driven_runtime):
        json.dumps(snapshot(driven_runtime))

    def test_empty_runtime_roundtrip(self, dec3):
        rt = SchedulerRuntime.create("dec", dec3)
        restored = restore(snapshot(rt))
        assert restored.n_events == 0
        assert restored.cost() == 0.0


class TestCorruptFiles:
    """Every broken-input path raises CheckpointError — never a bare
    traceback — and the CLI turns that into exit code 2."""

    def test_load_checkpoint_truncated_file(self, driven_runtime, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(driven_runtime, path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError, match="malformed or truncated"):
            load_checkpoint(path)

    def test_load_checkpoint_garbled_json(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("}{ not json at all")
        with pytest.raises(CheckpointError, match="malformed or truncated"):
            load_checkpoint(path)

    def test_load_checkpoint_non_object(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="JSON object"):
            load_checkpoint(path)

    def test_load_checkpoint_unknown_version(self, driven_runtime, tmp_path):
        path = tmp_path / "ckpt.json"
        snap = snapshot(driven_runtime)
        snap["version"] = 99
        path.write_text(json.dumps(snap))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_load_checkpoint_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.json")

    def test_read_trace_truncated_file(self, driven_runtime, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace(driven_runtime, path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # cut the last event mid-line
        with pytest.raises(CheckpointError, match="malformed trace line"):
            read_trace(path)

    def test_read_trace_garbled_event(self, driven_runtime, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace(driven_runtime, path)
        with open(path, "a") as fh:
            fh.write('{"op": "submit", "t": oops}\n')
        with pytest.raises(CheckpointError, match="malformed trace line"):
            read_trace(path)

    def test_read_trace_non_object_event(self, driven_runtime, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace(driven_runtime, path)
        with open(path, "a") as fh:
            fh.write("[1, 2]\n")
        with pytest.raises(CheckpointError, match="JSON objects"):
            read_trace(path)

    def test_read_trace_unknown_version_file(self, driven_runtime, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = record_trace(driven_runtime)
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(CheckpointError, match="version"):
            read_trace(path)

    def test_read_trace_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_trace(tmp_path / "nope.jsonl")

    @pytest.mark.parametrize("content", [
        "}{ garbage",                                # garbled
        '{"kind": "header", "version": 99, "config": {}}',  # future version
    ])
    def test_cli_replay_exits_2_without_traceback(
        self, content, tmp_path, capsys
    ):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text(content + "\n")
        assert main(["replay", str(bad)]) == 2
        out = capsys.readouterr()
        assert "Traceback" not in out.out + out.err

    def test_cli_replay_exits_2_on_truncated_trace(
        self, driven_runtime, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        write_trace(driven_runtime, path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        assert main(["replay", str(path)]) == 2
        out = capsys.readouterr()
        assert "Traceback" not in out.out + out.err
