"""Seeded chaos matrix: kill the service anywhere, recover state-identical.

Each case derives a kill point (fault kind + trigger step) purely from its
seed, runs a WAL-backed runtime into it, simulates the crash's on-disk
effects (files truncated to their durable prefix), recovers, re-feeds the
lost suffix of the event script, and asserts the result is state-identical
to an uninterrupted run: same assignment SHA-256, same cost, same clock,
same deterministic counters.  The matrix spans all fsync policies and all
crash fault kinds — ≥200 distinct kill points in total, every one exactly
reproducible from its seed.
"""

import numpy as np
import pytest

from repro import SchedulerRuntime, dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import assignment_digest
from repro.service.faults import (
    CRASH_KINDS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultPoint,
    InjectedFault,
)
from repro.service.wal import FSYNC_POLICIES, WALError, WALWriter, recover

N_CHAOS_CASES = 216  # 72 per fsync policy; acceptance floor is 200

LADDER = dec_ladder(3)
JOBS = uniform_workload(24, np.random.default_rng(20260808), max_size=LADDER.capacity(3))
EVENTS = list(event_stream(JOBS))  # 48 events: 24 arrivals + 24 departures


def make_runtime():
    return SchedulerRuntime.create("dec", LADDER, admission=["fits-ladder"])


def apply_event(runtime, ev):
    if ev.kind is EventKind.ARRIVE:
        runtime.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
    else:
        runtime.depart(ev.job.uid, ev.job.departure)


@pytest.fixture(scope="module")
def baseline():
    rt = make_runtime()
    for ev in EVENTS:
        apply_event(rt, ev)
    return {
        "digest": assignment_digest(rt),
        "cost": rt.cost(),
        "clock": rt.clock,
        "counters": {
            name: rt.metrics.counter(name).value
            for name in ("arrivals", "departures", "rejections")
        },
    }


def run_chaos_case(seed: int, wal_dir) -> tuple[bool, SchedulerRuntime]:
    """One kill-recover-refeed cycle; returns (crashed, recovered runtime)."""
    policy = FSYNC_POLICIES[seed % len(FSYNC_POLICIES)]
    plan = FaultPlan.seeded(seed, kinds=CRASH_KINDS, max_step=40)
    injector = FaultInjector(plan)
    runtime = make_runtime()
    config = runtime.config
    crashed = False
    wal = None
    try:
        # construction writes the first segment header, so the kill point
        # may fire before a single event is appended
        wal = WALWriter(
            wal_dir, runtime, fsync=policy, batch_every=3,
            segment_records=8, compact_every=12, faults=injector,
        )
        for ev in EVENTS:
            apply_event(runtime, ev)
            wal.append_new()
        wal.close()
    except (InjectedFault, WALError):
        crashed = True
        if wal is not None:
            wal.abandon()  # the process is "dead": nothing gets flushed
        injector.apply_crash_effects()  # disk drops to its durable prefix
    recovered = recover(wal_dir, config=config)
    survivor = recovered.runtime
    for ev in EVENTS[recovered.n_events:]:  # the client retries the suffix
        apply_event(survivor, ev)
    return crashed, survivor


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", range(N_CHAOS_CASES))
    def test_recovery_is_state_identical(self, seed, baseline, tmp_path):
        crashed, survivor = run_chaos_case(seed, tmp_path / "wal")
        del crashed  # a plan whose step never fires is a valid (clean) case
        assert assignment_digest(survivor) == baseline["digest"]
        assert survivor.cost() == baseline["cost"]
        assert survivor.clock == baseline["clock"]
        for name, value in baseline["counters"].items():
            assert survivor.metrics.counter(name).value == value

    def test_matrix_actually_kills(self, tmp_path):
        """Sanity: the seed range exercises real crashes of every kind and
        policy, not 216 clean runs."""
        kinds = set()
        policies = set()
        crashes = 0
        for seed in range(N_CHAOS_CASES):
            plan = FaultPlan.seeded(seed, kinds=CRASH_KINDS, max_step=40)
            kinds.add(plan.points[0].kind)
            policies.add(FSYNC_POLICIES[seed % len(FSYNC_POLICIES)])
        assert kinds == set(CRASH_KINDS)
        assert policies == set(FSYNC_POLICIES)
        for seed in range(0, N_CHAOS_CASES, 9):  # spot-check real crashes
            crashed, _ = run_chaos_case(seed, tmp_path / f"wal{seed}")
            crashes += crashed
        assert crashes > 0


class TestFaultPlans:
    def test_seeded_plans_are_deterministic(self):
        for seed in range(50):
            assert FaultPlan.seeded(seed) == FaultPlan.seeded(seed)
        distinct = {FaultPlan.seeded(seed).points for seed in range(200)}
        assert len(distinct) > 100  # seeds spread over (kind, step) space

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPoint("set-on-fire", 1)
        with pytest.raises(ValueError, match="1-based"):
            FaultPoint("partial-write", 0)
        assert set(CRASH_KINDS) < set(FAULT_KINDS)

    def test_injector_fires_exactly_at_step(self):
        injector = FaultInjector(FaultPlan.of(FaultPoint("crash-before-append", 3)))
        injector.point("wal.append.before")
        injector.point("wal.append.before")
        with pytest.raises(InjectedFault):
            injector.point("wal.append.before")
        assert [p.step for p in injector.fired] == [3]

    def test_crash_effects_truncate_to_durable(self, tmp_path):
        injector = FaultInjector(FaultPlan.of())
        path = tmp_path / "f.bin"
        with open(path, "wb") as fh:
            injector.io_write(fh, b"durable!")
            injector.io_fsync(fh)
            injector.io_write(fh, b"lost")
        lost = injector.apply_crash_effects()
        assert path.read_bytes() == b"durable!"
        assert lost == {str(path): 4}
