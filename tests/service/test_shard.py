"""The sharded multi-worker service: routing, parity, backpressure, crashes.

The contract under test: a single-worker sharded service is **byte
identical** to the single-loop server (same responses, same checkpoint);
a multi-worker service preserves every stream-contract error verbatim,
aggregates per-shard state in ``stats``, applies backpressure as the
retryable ``overloaded`` error, and fail-stops (``shard-failed``) when a
worker dies.
"""

import asyncio
import json

import numpy as np
import pytest

from repro import SchedulerRuntime, dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service import SchedulerServer
from repro.service.shard import (
    LocalWorkerHandle,
    ShardRouter,
    ShardWorker,
    WorkerSpec,
    shard_for_submit,
    shard_for_uid,
    size_class,
    start_worker_fleet,
)
from repro.service.shard.router import _WorkerDied
from repro.service.storage import open_store, restore_from_store

LADDER = dec_ladder(3)
CAPS = [t.capacity for t in LADDER.types]
CONFIG = {
    "scheduler": "dec",
    "ladder": [[t.capacity, t.rate] for t in LADDER.types],
    "admission": ["fits-ladder"],
}


def canon(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def make_events(n=120, seed=7):
    rng = np.random.default_rng(seed)
    jobs = uniform_workload(n, rng, max_size=LADDER.capacity(len(CAPS)))
    return list(event_stream(jobs))


def request_for(ev, uid_map):
    if ev.kind is EventKind.ARRIVE:
        return canon(
            {"op": "submit", "size": ev.job.size, "t": ev.job.arrival,
             "name": ev.job.name}
        )
    return canon({"op": "depart", "uid": uid_map[ev.job.uid], "t": ev.job.departure})


def make_router(n_shards, **spec_kwargs):
    specs = [
        WorkerSpec(shard=k, n_shards=n_shards, config=CONFIG, **spec_kwargs)
        for k in range(n_shards)
    ]
    return ShardRouter([LocalWorkerHandle(s) for s in specs], CAPS)


async def drive_router(router, events):
    uid_map, responses = {}, []
    for ev in events:
        response = await router._dispatch(request_for(ev, uid_map))
        if ev.kind is EventKind.ARRIVE:
            uid_map[ev.job.uid] = response.get("uid")
        responses.append(response)
    return responses


class TestRouting:
    def test_size_class_smallest_fitting_type(self):
        assert size_class(0.5, CAPS) == 1
        assert size_class(CAPS[0], CAPS) == 1
        assert size_class(CAPS[0] + 0.1, CAPS) == 2
        assert size_class(CAPS[-1], CAPS) == len(CAPS)

    def test_size_class_invalid_or_oversized_is_none(self):
        assert size_class(CAPS[-1] * 2, CAPS) is None
        assert size_class(-1.0, CAPS) is None
        assert size_class(float("nan"), CAPS) is None
        assert size_class(float("inf"), CAPS) is None

    def test_single_shard_takes_everything(self):
        for uid in range(50):
            assert shard_for_submit(1.0, uid, 1, CAPS) == 0
            assert shard_for_uid(uid, 1) == 0

    def test_deterministic_and_in_range(self):
        for n in (2, 3, 5, 8):
            for uid in range(200):
                a = shard_for_submit(2.0, uid, n, CAPS)
                assert a == shard_for_submit(2.0, uid, n, CAPS)
                assert 0 <= a < n
                assert 0 <= shard_for_uid(uid, n) < n

    def test_few_shards_partition_by_type_pool(self):
        # n_shards <= m: one shard per machine-type pool (mod n)
        n = 2
        for uid in range(40):
            assert shard_for_submit(0.5, uid, n, CAPS) == 0  # class 1
            assert shard_for_submit(2.0, uid, n, CAPS) == 1  # class 2
            assert shard_for_submit(8.0, uid, n, CAPS) == 0  # class 3 wraps

    def test_many_shards_block_partition_covers_all(self):
        # n_shards > m: each class owns a contiguous block; blocks tile [0, n)
        n = 8
        owned = set()
        for cls_size in (0.5, 2.0, 8.0):
            shards = {
                shard_for_submit(cls_size, uid, n, CAPS) for uid in range(500)
            }
            assert not (shards & owned), "class blocks must not overlap"
            owned |= shards
        assert owned == set(range(n))

    def test_oversized_job_falls_back_to_uid_hash(self):
        n = 4
        got = {shard_for_submit(CAPS[-1] * 2, uid, n, CAPS) for uid in range(200)}
        assert got == set(range(n))  # spread, not pinned to one pool


class TestSingleWorkerParity:
    """W=1 sharding is the determinism pin: byte-identical to single-loop."""

    def test_responses_and_checkpoint_byte_identical(self):
        events = make_events(150)

        runtime = SchedulerRuntime.create(
            "dec", LADDER, admission=["fits-ladder"]
        )
        server = SchedulerServer(runtime)
        uid_ref, ref = {}, []
        for ev in events:
            response = server.handle_line(request_for(ev, uid_ref))
            if ev.kind is EventKind.ARRIVE:
                uid_ref[ev.job.uid] = response["uid"]
            ref.append(response)
        ref_ckpt = server.handle_request({"op": "checkpoint"})
        ref_stats = server.handle_request({"op": "stats"})

        async def sharded():
            router = make_router(1)
            await router.attach()
            responses = await drive_router(router, events)
            ckpt = await router.route({"op": "checkpoint"})
            stats = await router.route({"op": "stats"})
            return responses, ckpt, stats

        responses, ckpt, stats = asyncio.run(sharded())
        assert [canon(r) for r in responses] == [canon(r) for r in ref]
        assert canon(ckpt) == canon(ref_ckpt)
        assert stats["cost"] == ref_stats["cost"]
        assert stats["events"] == ref_stats["events"]

    def test_error_responses_byte_identical(self):
        bad_requests = [
            '{"op": "submit", "size": -3, "t": 0}',
            '{"op": "submit", "size": 1}',
            '{"op": "submit", "size": "huge", "t": 0}',
            '{"op": "depart", "uid": 404, "t": 5}',
            '{"op": "advance"}',
            '{"op": "advance", "t": "NaN"}',
            "not json at all",
            '{"no": "op"}',
            '{"op": "frobnicate"}',
        ]
        runtime = SchedulerRuntime.create(
            "dec", LADDER, admission=["fits-ladder"]
        )
        server = SchedulerServer(runtime)
        ref = [server.handle_line(line) for line in bad_requests]

        async def sharded():
            router = make_router(1)
            await router.attach()
            return [await router._dispatch(line) for line in bad_requests]

        got = asyncio.run(sharded())
        assert [canon(r) for r in got] == [canon(r) for r in ref]


class TestMultiWorker:
    def test_two_shards_cover_stream_and_aggregate_stats(self):
        events = make_events(150)

        async def run():
            router = make_router(2)
            await router.attach()
            responses = await drive_router(router, events)
            stats = await router.route({"op": "stats"})
            schedule = await router.route({"op": "schedule"})
            return responses, stats, schedule

        responses, stats, schedule = asyncio.run(run())
        assert all(r.get("ok") for r in responses)
        assert stats["workers"] == 2
        assert len(stats["shards"]) == 2
        assert stats["events"] == sum(s["events"] for s in stats["shards"])
        assert stats["events"] == len(events)
        assert stats["cost"] == pytest.approx(
            sum(s["cost"] for s in stats["shards"])
        )
        assert all(s["events"] > 0 for s in stats["shards"])
        assert schedule["ok"] and schedule["jobs"] == len(events) // 2

    def test_contract_errors_match_single_loop_verbatim(self):
        # cross-shard validation must be indistinguishable from one loop
        runtime = SchedulerRuntime.create(
            "dec", LADDER, admission=["fits-ladder"]
        )
        server = SchedulerServer(runtime)
        probes = [
            {"op": "submit", "size": 2.0, "t": 10.0},
            {"op": "submit", "size": 2.0, "t": 5.0},      # backwards clock
            {"op": "depart", "uid": 0, "t": 7.0},          # <= handled above
            {"op": "depart", "uid": 123, "t": 20.0},       # unknown uid
            {"op": "advance", "t": 9.0},                   # backwards again
            {"op": "advance", "t": 30.0},
        ]
        ref = [server.handle_request(dict(p)) for p in probes]

        async def run():
            router = make_router(2)
            await router.attach()
            return [await router.route(dict(p)) for p in probes]

        got = asyncio.run(run())
        assert [canon(r) for r in got] == [canon(r) for r in ref]

    def test_duplicate_uid_parity(self):
        runtime = SchedulerRuntime.create(
            "dec", LADDER, admission=["fits-ladder"]
        )
        server = SchedulerServer(runtime)
        first = {"op": "submit", "size": 1.0, "t": 0.0, "uid": 7}
        dup = {"op": "submit", "size": 1.0, "t": 1.0, "uid": 7}
        ref = [server.handle_request(dict(first)), server.handle_request(dict(dup))]

        async def run():
            router = make_router(2)
            await router.attach()
            return [
                await router.route(dict(first)),
                await router.route(dict(dup)),
            ]

        got = asyncio.run(run())
        assert [canon(r) for r in got] == [canon(r) for r in ref]

    def test_rejected_job_departs_as_noop_on_every_shard(self):
        # a rejected uid's depart must stay a repeatable no-op (clock moves)
        big = LADDER.capacity(len(CAPS)) * 10

        async def run():
            router = make_router(2)
            await router.attach()
            rejected = await router.route({"op": "submit", "size": big, "t": 1.0})
            noop1 = await router.route(
                {"op": "depart", "uid": rejected["uid"], "t": 2.0}
            )
            noop2 = await router.route(
                {"op": "depart", "uid": rejected["uid"], "t": 3.0}
            )
            return rejected, noop1, noop2

        rejected, noop1, noop2 = asyncio.run(run())
        assert rejected["ok"] and not rejected["accepted"]
        assert noop1["ok"] and noop2["ok"]

    def test_checkpoint_refused_with_multiple_workers(self):
        async def run():
            router = make_router(2)
            await router.attach()
            return await router.route({"op": "checkpoint"})

        response = asyncio.run(run())
        assert not response["ok"]
        assert response["error"]["code"] == "invalid-request"
        assert "more than one worker" in response["error"]["message"]


class StalledHandle(LocalWorkerHandle):
    """A handle whose worker never finishes a batch (backpressure probe)."""

    def __init__(self, spec, gate, **kwargs):
        super().__init__(spec, **kwargs)
        self._gate = gate

    async def _apply_batch(self, requests):
        await self._gate.wait()
        return await super()._apply_batch(requests)


class TestBackpressure:
    def test_full_worker_queue_sheds_with_overloaded(self):
        # 12 concurrent submits against a depth-4 queue: the enqueueing
        # tasks all run before the pump wakes, so exactly 8 are shed
        async def run():
            spec = WorkerSpec(shard=0, n_shards=1, config=CONFIG)
            handle = LocalWorkerHandle(spec, queue_depth=4)
            router = ShardRouter([handle], CAPS)
            await router.attach()
            futures = [
                asyncio.ensure_future(
                    router.route({"op": "submit", "size": 1.0, "t": float(i)})
                )
                for i in range(12)
            ]
            settled = await asyncio.gather(*futures)
            return settled, router.metrics.counter("shed_requests").value

        settled, shed_count = asyncio.run(run())
        shed = [r for r in settled if not r["ok"]]
        accepted = [r for r in settled if r["ok"]]
        assert len(accepted) == 4
        assert len(shed) == 8 and shed_count == 8
        for r in shed:
            assert r["error"]["code"] == "overloaded"
            assert r["error"]["retryable"] is True
            assert r["error"]["retry_after_ms"] > 0
            assert "admission queue is full" in r["error"]["message"]

    def test_broadcast_needs_room_on_every_shard(self):
        async def run():
            gate = asyncio.Event()
            stalled = StalledHandle(
                WorkerSpec(shard=0, n_shards=2, config=CONFIG), gate,
                queue_depth=2,
            )
            healthy = LocalWorkerHandle(
                WorkerSpec(shard=1, n_shards=2, config=CONFIG)
            )
            router = ShardRouter([stalled, healthy], CAPS)
            await router.attach()
            # class-1 jobs pin to shard 0: two batches fill the stalled
            # worker's pipe, two more refill its queue to the brim
            first = [
                asyncio.ensure_future(
                    router.route({"op": "submit", "size": 0.5, "t": float(i)})
                )
                for i in range(2)
            ]
            await asyncio.sleep(0.02)  # pump drains both into a stalled batch
            second = [
                asyncio.ensure_future(
                    router.route({"op": "submit", "size": 0.5, "t": float(2 + i)})
                )
                for i in range(2)
            ]
            await asyncio.sleep(0.02)  # they sit in the (now full) queue
            assert not stalled.has_room()
            broadcast = await router.route({"op": "advance", "t": 100.0})
            gate.set()
            settled = await asyncio.gather(*first, *second)
            return broadcast, settled

        broadcast, settled = asyncio.run(run())
        assert not broadcast["ok"]
        assert broadcast["error"]["code"] == "overloaded"
        assert all(r["ok"] for r in settled)  # queued work still completes


class FailingHandle(LocalWorkerHandle):
    """A handle whose worker dies on the first batch (fail-stop probe)."""

    async def _apply_batch(self, requests):
        raise _WorkerDied("simulated segfault")


class TestFailStop:
    def test_dead_worker_fails_request_and_drains_router(self):
        async def run():
            handle = FailingHandle(WorkerSpec(shard=0, n_shards=1, config=CONFIG))
            router = ShardRouter([handle], CAPS)
            await router.attach()
            doomed = await router.route({"op": "submit", "size": 1.0, "t": 0.0})
            follow_up = await router.route({"op": "submit", "size": 1.0, "t": 1.0})
            return doomed, follow_up, router._draining

        doomed, follow_up, draining = asyncio.run(run())
        assert not doomed["ok"]
        assert doomed["error"]["code"] == "shard-failed"
        assert "simulated segfault" in doomed["error"]["message"]
        assert draining
        assert not follow_up["ok"]
        assert follow_up["error"]["code"] == "shard-failed"


class TestWorkerCore:
    def test_shard_worker_batches_and_persists(self, tmp_path):
        spec = WorkerSpec(
            shard=0, n_shards=1, config=CONFIG,
            storage=f"sqlite:{tmp_path / 'w.db'}", sync="always",
        )
        worker = ShardWorker(spec)
        responses = worker.apply(
            [
                {"op": "submit", "size": 1.0, "t": 0.0},
                {"op": "submit", "size": 2.0, "t": 1.0},
                {"op": "depart", "uid": 0, "t": 5.0},
            ]
        )
        assert [r["ok"] for r in responses] == [True, True, True]
        summary = worker.shutdown()
        assert summary["shard"] == 0 and summary["events"] == 3

        store = open_store(f"sqlite:{tmp_path / 'w.db'}")
        recovered = restore_from_store(store)
        assert recovered.n_events == 3
        assert recovered.runtime.cost() == pytest.approx(summary["cost"])
        store.close()

    def test_worker_restarts_from_its_store(self, tmp_path):
        spec = WorkerSpec(
            shard=0, n_shards=1, config=CONFIG,
            storage=f"sqlite:{tmp_path / 'w.db'}", sync="always",
            compact_every=2,
        )
        worker = ShardWorker(spec)
        worker.apply(
            [{"op": "submit", "size": 1.0, "t": float(i)} for i in range(5)]
        )
        summary = worker.shutdown()
        reborn = ShardWorker(spec)
        assert reborn.runtime.n_events == summary["events"]
        assert reborn.runtime.cost() == pytest.approx(summary["cost"])
        reborn.shutdown()


class TestRouterRestart:
    """A fresh router over recovered shards adopts their uid inventory —
    without it, post-restart departs misroute (uid-hash fallback) and a
    duplicate submit routed to the wrong shard slips through."""

    def test_restarted_router_keeps_uid_routing(self, tmp_path):
        spec = {"storage": f"sqlite:{tmp_path / 'r.db'}", "sync": "always"}

        def fresh_router():
            specs = [
                WorkerSpec(shard=k, n_shards=2, config=CONFIG, **spec)
                for k in range(2)
            ]
            return ShardRouter([LocalWorkerHandle(s) for s in specs], CAPS)

        async def run1():
            router = fresh_router()
            await router.attach()
            out = []
            for uid in range(8):
                out.append(await router.route(
                    {"op": "submit", "uid": uid,
                     "size": 0.25 + (uid % 5) * 0.75, "t": float(uid)}
                ))
            for uid in range(0, 8, 2):
                out.append(await router.route(
                    {"op": "depart", "uid": uid, "t": 20.0 + uid}
                ))
            out.append(await router.route(  # oversize: rejected, uid burned
                {"op": "submit", "uid": 50, "size": 99.0, "t": 27.0}
            ))
            await router.drain()
            return out

        first = asyncio.run(run1())
        assert all(r["ok"] for r in first)
        assert first[-1]["accepted"] is False

        async def run2():
            router = fresh_router()
            await router.attach()
            # duplicate of a recovered active uid, sized for the *other*
            # shard — only the adopted mirror can refuse it
            dup = await router.route(
                {"op": "submit", "uid": 1, "size": 3.5, "t": 30.0}
            )
            departs = [
                await router.route({"op": "depart", "uid": uid, "t": 30.0 + uid})
                for uid in range(1, 8, 2)
            ]
            rejected = await router.route(
                {"op": "depart", "uid": 50, "t": 40.0}
            )
            stale = await router.route(  # clock recovered too
                {"op": "submit", "uid": 60, "size": 0.5, "t": 0.0}
            )
            stats = await router.route({"op": "stats"})
            await router.drain()
            return dup, departs, rejected, stale, stats

        dup, departs, rejected, stale, stats = asyncio.run(run2())
        assert not dup["ok"] and dup["error"]["code"] == "duplicate-uid"
        assert all(r["ok"] for r in departs)
        assert rejected["ok"]  # rejected-uid depart stays a no-op
        assert not stale["ok"] and "ran backwards" in stale["error"]["message"]
        assert stats["active"] == 0


class TestSpawnedFleet:
    """The real thing: spawned processes, pipes, per-shard sqlite stores."""

    def test_fleet_round_trip_and_restore(self, tmp_path):
        events = make_events(60, seed=3)
        spec = f"sqlite:{tmp_path / 'fleet.db'}"

        async def run():
            handles = start_worker_fleet(2, CONFIG, storage=spec, sync="always")
            router = ShardRouter(handles, CAPS)
            await router.attach()
            responses = await drive_router(router, events)
            stats = await router.route({"op": "stats"})
            await router.drain()
            return responses, stats, router.summaries

        responses, stats, summaries = asyncio.run(run())
        assert all(r.get("ok") for r in responses)
        assert stats["events"] == len(events)
        assert len(summaries) == 2
        for k, summary in enumerate(sorted(summaries, key=lambda s: s["shard"])):
            store = open_store(f"{spec}.shard{k}")
            recovered = restore_from_store(store)
            assert recovered.n_events == summary["events"]
            assert recovered.runtime.cost() == pytest.approx(summary["cost"])
            store.close()
