"""Graceful drain: finish in-flight work, persist, and come back identical.

Covers the shutdown contract at both levels: in-process (drain waits for
in-flight requests, refuses new ones with the retryable ``draining``
error, writes a final snapshot) and end-to-end (a SIGTERM'd ``bshm serve
--wal`` process exits 0 and its WAL directory restores to the exact
pre-shutdown assignment digest).
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

from repro import SchedulerRuntime, dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import assignment_digest
from repro.service.faults import FaultInjector, FaultPlan, FaultPoint
from repro.service.server import SchedulerServer
from repro.service.wal import WALWriter, recover

import numpy as np

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def make_runtime():
    return SchedulerRuntime.create("dec", dec_ladder(3), admission=["fits-ladder"])


async def _drain_scenario(wal_dir):
    """One request stalled in flight; drain must wait for it, shed new
    arrivals as ``draining``, then write the final snapshot."""
    gate = asyncio.Event()
    injector = FaultInjector(FaultPlan.of(FaultPoint("stall", 2, arg=gate)))
    runtime = make_runtime()
    wal = WALWriter(wal_dir, runtime, fsync="always")
    server = SchedulerServer(runtime, wal=wal, faults=injector)
    host, port = await server.start("127.0.0.1", 0)

    reader1, writer1 = await asyncio.open_connection(host, port)

    async def ask(reader, writer, request):
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())

    first = await ask(reader1, writer1, {"op": "submit", "size": 0.5, "t": 0.0, "uid": 1})
    assert first["ok"]
    # request 2 hits the stall point and hangs in flight
    writer1.write(b'{"op": "submit", "size": 0.5, "t": 1.0, "uid": 2}\n')
    await writer1.drain()
    for _ in range(200):
        if server._inflight == 1:
            break
        await asyncio.sleep(0.005)
    assert server._inflight == 1

    drain_task = asyncio.create_task(server.drain())
    await asyncio.sleep(0.02)
    assert not drain_task.done()  # still waiting on the in-flight request

    # a new request during the drain is refused as draining (when the
    # listener already closed, the refused TCP connect proves the same)
    writer2 = None
    try:
        reader2, writer2 = await asyncio.open_connection(host, port)
        refused = await ask(reader2, writer2, {"op": "stats"})
    except (ConnectionError, OSError):
        pass
    else:
        assert not refused["ok"]
        assert refused["error"]["code"] == "draining"
        assert refused["error"]["retryable"] is True
    finally:
        if writer2 is not None:
            writer2.close()

    gate.set()  # release the stalled request
    stalled = json.loads(await reader1.readline())
    assert stalled["ok"] and stalled["accepted"]  # it completed, durably
    await asyncio.wait_for(drain_task, timeout=5)
    writer1.close()
    return runtime


class TestDrain:
    def test_drain_completes_inflight_and_snapshots(self, tmp_path):
        wal_dir = tmp_path / "wal"
        runtime = asyncio.run(_drain_scenario(wal_dir))
        assert runtime.n_events == 2  # both submits made it
        assert sorted(wal_dir.glob("snapshot-*.json")), "no final snapshot"
        recovered = recover(wal_dir)
        assert recovered.snapshot_n == runtime.n_events
        assert recovered.replayed == 0  # restore is pure snapshot, O(state)
        assert assignment_digest(recovered.runtime) == assignment_digest(runtime)
        assert recovered.runtime.cost() == runtime.cost()
        assert recovered.runtime.clock == runtime.clock

    def test_drain_is_idempotent(self, tmp_path):
        async def scenario():
            runtime = make_runtime()
            wal = WALWriter(tmp_path / "wal", runtime, fsync="always")
            server = SchedulerServer(runtime, wal=wal)
            await server.start("127.0.0.1", 0)
            await server.drain()
            await server.drain()  # second drain is a no-op, not an error

        asyncio.run(scenario())


class TestSigtermEndToEnd:
    def test_sigterm_drains_and_wal_restores_digest(self, tmp_path):
        ladder = dec_ladder(3)
        jobs = uniform_workload(12, np.random.default_rng(5), max_size=ladder.capacity(3))
        events = list(event_stream(jobs))[:16]

        # reference: the same prefix applied to a local runtime
        reference = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
        for ev in events:
            if ev.kind is EventKind.ARRIVE:
                reference.submit(ev.job.size, ev.job.arrival,
                                 name=ev.job.name, uid=ev.job.uid)
            else:
                reference.depart(ev.job.uid, ev.job.departure)
        expected_digest = assignment_digest(reference)

        wal_dir = tmp_path / "wal"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--ladder-kind", "dec", "--m", "3", "--scheduler", "dec",
             "--wal", str(wal_dir), "--fsync", "always"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            host, port = banner.rsplit(" ", 1)[-1].strip().rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.settimeout(10)
                fh = sock.makefile("rw", encoding="utf-8", newline="\n")
                for ev in events:
                    if ev.kind is EventKind.ARRIVE:
                        request = {"op": "submit", "size": ev.job.size,
                                   "t": ev.job.arrival, "uid": ev.job.uid,
                                   "name": ev.job.name}
                    else:
                        request = {"op": "depart", "uid": ev.job.uid,
                                   "t": ev.job.departure}
                    fh.write(json.dumps(request) + "\n")
                    fh.flush()
                    assert json.loads(fh.readline())["ok"]
                proc.send_signal(signal.SIGTERM)
                assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

        recovered = recover(wal_dir)
        assert recovered.n_events == len(events)
        assert recovered.replayed == 0  # SIGTERM drain wrote a final snapshot
        assert assignment_digest(recovered.runtime) == expected_digest

        # and the operator-facing CLI agrees
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "recover", str(wal_dir)],
            capture_output=True, env=env, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert expected_digest in out.stdout
