"""The retrying client: backoff on retryable errors, idempotent replay.

A scripted fake server pins down the retry discipline (what is retried,
with which delays); a real in-process server pins down end-to-end replay,
including the duplicate-uid-is-success rule after a mid-stream redo.
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro import SchedulerRuntime, dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import assignment_digest
from repro.service.client import ClientError, RetryingClient, replay_events
from repro.service.server import SchedulerServer


class ScriptedServer:
    """Accepts connections and answers each request line from a script.

    A script entry is either a response dict (sent as JSON) or the string
    ``"close"`` (drop the connection without answering — a transport
    fault the client must retry through).
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                fh = conn.makefile("rwb")
                while self.script:
                    line = fh.readline()
                    if not line:
                        break
                    self.requests.append(json.loads(line))
                    action = self.script.pop(0)
                    if action == "close":
                        break  # connection dropped mid-request
                    fh.write((json.dumps(action) + "\n").encode())
                    fh.flush()

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5)


def overloaded(retry_after_ms=1.0):
    return {"ok": False, "error": {"code": "overloaded", "retryable": True,
                                   "message": "busy", "retry_after_ms": retry_after_ms}}


class TestRetryDiscipline:
    def test_retries_retryable_then_succeeds(self):
        server = ScriptedServer([overloaded(), overloaded(), {"ok": True, "n": 3}])
        delays = []
        client = RetryingClient("127.0.0.1", server.port,
                                backoff_s=0.01, sleep=delays.append)
        try:
            response = client.request({"op": "stats"})
        finally:
            client.close()
            server.close()
        assert response == {"ok": True, "n": 3}
        assert len(server.requests) == 3
        assert len(delays) == 2
        assert delays[1] > delays[0]  # exponential, not constant

    def test_honours_retry_after_hint(self):
        server = ScriptedServer([overloaded(retry_after_ms=500.0), {"ok": True}])
        delays = []
        client = RetryingClient("127.0.0.1", server.port,
                                backoff_s=0.001, sleep=delays.append)
        try:
            assert client.request({"op": "stats"})["ok"]
        finally:
            client.close()
            server.close()
        assert delays == [0.5]  # the server's hint beat the tiny backoff

    def test_reconnects_after_connection_drop(self):
        server = ScriptedServer(["close", {"ok": True, "again": True}])
        client = RetryingClient("127.0.0.1", server.port,
                                backoff_s=0.001, sleep=lambda _d: None)
        try:
            response = client.request({"op": "stats"})
        finally:
            client.close()
            server.close()
        assert response["again"]
        assert len(server.requests) == 2  # same request, redelivered

    def test_non_retryable_error_returned_verbatim(self):
        error = {"ok": False, "error": {"code": "invalid-request",
                                        "retryable": False, "message": "no"}}
        server = ScriptedServer([error, {"ok": True}])
        client = RetryingClient("127.0.0.1", server.port, sleep=lambda _d: None)
        try:
            response = client.request({"op": "advance"})
        finally:
            client.close()
            server.close()
        assert response == error
        assert len(server.requests) == 1  # no retry on contract violations

    def test_budget_exhaustion_raises(self):
        server = ScriptedServer([overloaded()] * 3)
        client = RetryingClient("127.0.0.1", server.port, max_attempts=3,
                                backoff_s=0.001, sleep=lambda _d: None)
        try:
            with pytest.raises(ClientError, match="after 3 attempts"):
                client.request({"op": "stats"})
        finally:
            client.close()
            server.close()


class TestReplayOverNetwork:
    def _serve(self, runtime):
        """A real server on a background thread with its own event loop."""
        started = threading.Event()
        box = {}

        async def run():
            server = SchedulerServer(runtime)
            box["server"] = server
            box["addr"] = await server.start("127.0.0.1", 0)
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.wait_shutdown()

        thread = threading.Thread(target=lambda: asyncio.run(run()), daemon=True)
        thread.start()
        assert started.wait(timeout=5)
        return box, thread

    def test_replay_events_end_to_end_with_redo(self):
        ladder = dec_ladder(3)
        jobs = uniform_workload(10, np.random.default_rng(3), max_size=ladder.capacity(3))
        events = []
        reference = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
        for ev in event_stream(jobs):
            if ev.kind is EventKind.ARRIVE:
                reference.submit(ev.job.size, ev.job.arrival,
                                 name=ev.job.name, uid=ev.job.uid)
            else:
                reference.depart(ev.job.uid, ev.job.departure)
        events = list(reference.events)

        live = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
        box, thread = self._serve(live)
        host, port = box["addr"]
        try:
            with RetryingClient(host, port, backoff_s=0.001) as client:
                # a duplicated prefix models an at-least-once redelivery:
                # the repeated submits come back as duplicate-uid = success
                script = events[:3] + events
                applied = replay_events(client, script)
                assert applied == len(script)
                with pytest.raises(ClientError, match="rejected"):
                    replay_events(client, [{"op": "depart", "uid": 10 ** 9,
                                            "t": 10.0 ** 9}])
                client.request({"op": "shutdown"})
        finally:
            thread.join(timeout=10)
        assert live.n_events >= len(events)
        assert assignment_digest(live) == assignment_digest(reference)
        assert live.cost() == reference.cost()
