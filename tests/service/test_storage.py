"""Backend conformance for the pluggable event-log stores.

One parametrized suite runs against both backends (memory and SQLite):
whatever durability the file WAL promised, a :class:`StateStore` must
promise too — append/replay identity, gap detection, snapshot + O(delta)
restore, and crash-to-durable-prefix semantics (torn tails via the same
:class:`FaultInjector` the WAL chaos tests use).
"""

import json

import pytest

from repro import SchedulerRuntime, dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import assignment_digest
from repro.service.faults import FaultInjector, FaultPlan, FaultPoint, InjectedFault
from repro.service.metrics import MetricsRegistry
from repro.service.storage import (
    MemoryStore,
    SQLiteStore,
    StorageError,
    StoreWriter,
    open_store,
    restore_from_store,
    shard_store_spec,
)

BACKENDS = ("memory", "sqlite")


class Backend:
    """Uniform make/reopen handle over one backend, rooted in tmp_path."""

    def __init__(self, kind, tmp_path):
        self.kind = kind
        self._tmp = tmp_path
        self._mem = {}

    def make(self, name="store"):
        if self.kind == "memory":
            store = MemoryStore()
            self._mem[name] = store
            return store
        return SQLiteStore(self._tmp / f"{name}.db")

    def reopen(self, name="store"):
        """What a restart sees (the prior handle must be closed/abandoned)."""
        if self.kind == "memory":
            survivor = self._mem[name].reopen()
            self._mem[name] = survivor
            return survivor
        return SQLiteStore(self._tmp / f"{name}.db")


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    return Backend(request.param, tmp_path)


def make_runtime(metrics=None):
    return SchedulerRuntime.create(
        "dec", dec_ladder(3), admission=["fits-ladder"], metrics=metrics
    )


def drive(rt, writer, jobs, *, stop_after=None):
    """Apply the event stream, persisting after each event (server order)."""
    for i, ev in enumerate(event_stream(jobs)):
        if stop_after is not None and i >= stop_after:
            break
        if ev.kind is EventKind.ARRIVE:
            rt.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
        else:
            rt.depart(ev.job.uid, ev.job.departure)
        if writer is not None:
            writer.append_new()


@pytest.fixture
def jobs(rng):
    ladder = dec_ladder(3)
    return uniform_workload(40, rng, max_size=ladder.capacity(3))


EVENTS = [
    {"op": "submit", "uid": i, "size": 1.0, "t": float(i)} for i in range(12)
]


class TestEventLog:
    def test_append_replay_identity(self, backend):
        store = backend.make()
        store.append_events(EVENTS[:5], 0)
        store.append_events(EVENTS[5:], 5)
        assert store.n_events() == len(EVENTS)
        assert store.events_since(0) == EVENTS
        assert store.events_since(7) == EVENTS[7:]
        assert store.events_since(len(EVENTS)) == []

    def test_append_gap_or_overlap_rejected(self, backend):
        store = backend.make()
        store.append_events(EVENTS[:5], 0)
        with pytest.raises(StorageError, match="gap or overlap"):
            store.append_events(EVENTS[5:], 7)
        with pytest.raises(StorageError, match="gap or overlap"):
            store.append_events(EVENTS[5:], 3)

    def test_returned_events_do_not_alias_store_state(self, backend):
        store = backend.make()
        store.append_events(EVENTS[:3], 0)
        got = store.events_since(0)
        got[0]["op"] = "mutated"
        assert store.events_since(0)[0]["op"] == "submit"

    def test_config_first_writer_wins(self, backend):
        store = backend.make()
        assert store.config is None
        store.set_config({"scheduler": "dec"})
        store.set_config({"scheduler": "inc"})
        assert store.config == {"scheduler": "dec"}


class TestSnapshotCompact:
    def test_compact_prunes_covered_prefix(self, backend, jobs):
        rt = make_runtime()
        store = backend.make()
        writer = StoreWriter(store, rt, sync="always")
        drive(rt, writer, jobs)
        n = rt.n_events
        writer.compact()
        assert store.n_events() == n  # high-water mark survives the prune
        with pytest.raises(StorageError, match="compacted away"):
            store.events_since(0)
        assert store.events_since(n) == []

    def test_snapshot_restore_is_o_delta_and_exact(self, backend, jobs):
        rt = make_runtime()
        store = backend.make()
        writer = StoreWriter(store, rt, sync="always", compact_every=25)
        drive(rt, writer, jobs)
        writer.close()
        reopened = backend.reopen()
        rec = restore_from_store(reopened)
        assert rec.snapshot_n is not None
        assert rec.replayed == rt.n_events - rec.snapshot_n
        assert rec.replayed < rt.n_events  # snapshot did real work
        assert rec.n_events == rt.n_events
        assert rec.runtime.cost() == pytest.approx(rt.cost(), abs=1e-12)
        assert assignment_digest(rec.runtime) == assignment_digest(rt)

    def test_reopen_after_full_compaction_keeps_high_water_mark(
        self, backend, jobs
    ):
        # regression: a fully-pruned log must not reset the store to 0
        rt = make_runtime()
        store = backend.make()
        writer = StoreWriter(store, rt, sync="always")
        drive(rt, writer, jobs)
        writer.compact()
        writer.close()
        reopened = backend.reopen()
        assert reopened.n_events() == rt.n_events
        rec = restore_from_store(reopened)
        # a writer must attach to the recovered pair without backfilling
        StoreWriter(reopened, rec.runtime)
        assert reopened.n_events() == rt.n_events

    def test_snapshot_outside_log_rejected(self, backend):
        store = backend.make()
        store.append_events(EVENTS[:3], 0)
        with pytest.raises(StorageError, match="outside the store"):
            store.write_snapshot({"n_events": 7})


class TestCrashSemantics:
    def test_abandon_keeps_only_durable_prefix(self, backend, jobs):
        rt = make_runtime()
        store = backend.make()
        writer = StoreWriter(store, rt, sync="batch", batch_every=8)
        drive(rt, writer, jobs, stop_after=20)
        synced = 8 * (20 // 8)  # last explicit batch sync
        writer.abandon()
        survivor = backend.reopen()
        assert synced <= survivor.n_events() <= 20
        assert survivor.events_since(0) == [
            {k: v for k, v in e.items()} for e in rt.events_since(0)
        ][: survivor.n_events()]

    @pytest.mark.parametrize("kind", ["crash-before-append", "crash-after-append"])
    def test_torn_tail_recovers_to_prefix_then_replays(self, backend, jobs, kind):
        # the same FaultInjector kill points the WAL chaos tests use
        rt = make_runtime()
        store = backend.make()
        plan = FaultPlan.of(FaultPoint(kind=kind, step=13))
        writer = StoreWriter(
            store, rt, sync="always", faults=FaultInjector(plan)
        )
        with pytest.raises(InjectedFault):
            drive(rt, writer, jobs)
        writer.abandon()  # what the fail-stopping server does
        survivor = backend.reopen()
        rec = restore_from_store(survivor)
        assert rec.n_events <= rt.n_events
        # the recovered prefix replays forward to the full run's state
        from repro.service.checkpoint import _apply_event

        reference = make_runtime()
        drive(reference, None, jobs)
        replayed = rec.runtime
        ref_writer = StoreWriter(survivor, replayed)
        for event in reference.events_since(rec.n_events):
            _apply_event(replayed, event)
        ref_writer.append_new()
        assert replayed.n_events == reference.n_events
        assert survivor.n_events() == reference.n_events
        assert assignment_digest(replayed) == assignment_digest(reference)

    def test_closed_store_refuses_appends(self, backend):
        store = backend.make()
        store.append_events(EVENTS[:2], 0)
        store.close()
        with pytest.raises(StorageError):
            store.append_events(EVENTS[2:4], 2)


class TestStoreWriter:
    def test_config_mismatch_refused(self, backend):
        rt = make_runtime()
        store = backend.make()
        store.set_config({"scheduler": "inc", "ladder": [], "admission": []})
        with pytest.raises(StorageError, match="different runtime config"):
            StoreWriter(store, rt)

    def test_store_ahead_of_runtime_refused(self, backend, jobs):
        rt = make_runtime()
        store = backend.make()
        writer = StoreWriter(store, rt, sync="always")
        drive(rt, writer, jobs)
        writer.close()
        fresh = make_runtime()
        with pytest.raises(StorageError, match="recover from the store first"):
            StoreWriter(backend.reopen(), fresh)

    def test_backfills_prewarmed_runtime(self, backend, jobs):
        rt = make_runtime()
        drive(rt, None, jobs, stop_after=10)
        store = backend.make()
        StoreWriter(store, rt)  # runtime ahead of an empty store
        assert store.n_events() == rt.n_events

    def test_sync_policy_validated(self, backend):
        with pytest.raises(ValueError, match="sync policy"):
            StoreWriter(backend.make(), make_runtime(), sync="sometimes")

    def test_metrics_count_appends_and_syncs(self, backend, jobs):
        metrics = MetricsRegistry()
        rt = make_runtime(metrics)
        writer = StoreWriter(
            backend.make(), rt, sync="always", metrics=metrics, compact_every=20
        )
        drive(rt, writer, jobs)
        assert metrics.counter("store_appends").value == rt.n_events
        assert metrics.counter("store_syncs").value > 0
        assert metrics.counter("store_compactions").value == rt.n_events // 20


class TestRestore:
    def test_empty_store_without_config_fails(self, backend):
        with pytest.raises(StorageError, match="no recoverable data"):
            restore_from_store(backend.make())

    def test_empty_store_with_config_builds_fresh(self, backend):
        config = make_runtime().config
        rec = restore_from_store(backend.make(), config=config)
        assert rec.n_events == 0
        assert rec.runtime.config == config

    def test_progress_lines_cover_each_stage(self, backend, jobs):
        rt = make_runtime()
        store = backend.make()
        writer = StoreWriter(store, rt, sync="always", compact_every=25)
        drive(rt, writer, jobs)
        writer.close()
        lines = []
        restore_from_store(backend.reopen(), progress=lines.append)
        assert any("snapshot@" in line for line in lines)
        assert any("replayed" in line for line in lines)


class TestSQLiteGuards:
    def test_foreign_sqlite_schema_refused(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE users (id INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(StorageError, match="not a bshm event store"):
            SQLiteStore(path)

    def test_unsupported_version_refused(self, tmp_path):
        path = tmp_path / "future.db"
        SQLiteStore(path).close()
        import sqlite3

        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'version'")
        conn.commit()
        conn.close()
        with pytest.raises(StorageError, match="unsupported store version"):
            SQLiteStore(path)

    def test_non_database_file_refused(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_text("definitely not sqlite")
        with pytest.raises(StorageError, match="cannot open SQLite store"):
            SQLiteStore(path)


class TestSpecParsing:
    def test_open_store_memory(self):
        assert isinstance(open_store("memory"), MemoryStore)

    def test_open_store_sqlite(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path / 'a.db'}")
        assert isinstance(store, SQLiteStore)
        store.close()

    def test_open_store_unknown_spec(self):
        with pytest.raises(StorageError):
            open_store("postgres://nope")

    def test_shard_store_spec_suffixes_sqlite_per_shard(self, tmp_path):
        spec = f"sqlite:{tmp_path / 'db.sqlite'}"
        assert shard_store_spec(spec, 0, 1) == spec
        assert shard_store_spec(spec, 2, 4) == spec + ".shard2"
        assert shard_store_spec("memory", 2, 4) == "memory"

    def test_shard_specs_give_independent_stores(self, tmp_path):
        spec = f"sqlite:{tmp_path / 'db.sqlite'}"
        a = open_store(shard_store_spec(spec, 0, 2))
        b = open_store(shard_store_spec(spec, 1, 2))
        a.append_events(EVENTS[:2], 0)
        assert b.n_events() == 0
        a.close()
        b.close()
