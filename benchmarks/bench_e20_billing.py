"""E20 bench — billing-granularity re-pricing."""

from conftest import run_and_print

from repro import dec_offline
from repro.schedule.billing import BillingModel, billed_cost


def test_e20_table(benchmark):
    run_and_print("E20", benchmark)


def test_e20_billing_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = dec_offline(dec_workload_200, dec3_ladder)
    model = BillingModel(period=1.0, minimum=0.5)
    cost = benchmark(billed_cost, schedule, model)
    assert cost >= schedule.cost()
