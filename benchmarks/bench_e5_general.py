"""E5 bench — Section V: general-case sqrt(m) shape."""

from conftest import run_and_print

from repro import general_offline, uniform_workload


def test_e5_table(benchmark):
    run_and_print("E5", benchmark)


def test_e5_general_offline_kernel(benchmark, bench_rng, fig2_ladder):
    jobs = uniform_workload(200, bench_rng, max_size=fig2_ladder.capacity(8))
    schedule = benchmark(general_offline, jobs, fig2_ladder)
    assert schedule.cost() > 0
