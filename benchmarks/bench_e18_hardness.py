"""E18 bench — randomized hard-instance search."""

from conftest import run_and_print

from repro import dec_ladder, dec_offline
from repro.analysis.hardness import search_hard_instance


def test_e18_table(benchmark):
    run_and_print("E18", benchmark)


def test_e18_search_kernel(benchmark):
    ladder = dec_ladder(3)
    found = benchmark.pedantic(
        lambda: search_hard_instance(
            dec_offline, ladder, seed=1, n_jobs=15, random_rounds=5, mutate_rounds=5
        ),
        rounds=2,
        iterations=1,
    )
    assert found.ratio >= 1.0
