"""E21 bench — crossover analysis between type-aware and big-box strategies."""

from conftest import run_and_print


def test_e21_table(benchmark):
    run_and_print("E21", benchmark)
