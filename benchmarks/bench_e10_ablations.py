"""E10 bench — design-constant ablations."""

from conftest import run_and_print

from repro import dec_offline


def test_e10_table(benchmark):
    run_and_print("E10", benchmark)


def test_e10_ablated_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = benchmark(
        lambda: dec_offline(dec_workload_200, dec3_ladder, budget_factor=4.0)
    )
    assert schedule.cost() > 0
