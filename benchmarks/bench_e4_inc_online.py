"""E4 bench — Section IV: INC-ONLINE (9/4 mu + 27/4)-competitiveness."""

from conftest import run_and_print

from repro import IncOnlineScheduler, run_online


def test_e4_table(benchmark):
    run_and_print("E4", benchmark)


def test_e4_inc_online_kernel(benchmark, inc_workload_200, inc3_ladder):
    schedule = benchmark(
        lambda: run_online(inc_workload_200, IncOnlineScheduler(inc3_ladder))
    )
    assert schedule.cost() > 0
