"""E11 bench — runtime scaling; benchmarks each kernel at n=1000."""

from conftest import run_and_print

from repro import (
    DecOnlineScheduler,
    dec_offline,
    lower_bound,
    poisson_workload,
    run_online,
)


def test_e11_table(benchmark):
    run_and_print("E11", benchmark)


def _jobs1000(bench_rng, ladder):
    return poisson_workload(1000, bench_rng, max_size=ladder.capacity(3))


def test_e11_offline_1000_jobs(benchmark, bench_rng, dec3_ladder):
    jobs = _jobs1000(bench_rng, dec3_ladder)
    benchmark.pedantic(dec_offline, args=(jobs, dec3_ladder), rounds=3, iterations=1)


def test_e11_online_1000_jobs(benchmark, bench_rng, dec3_ladder):
    jobs = _jobs1000(bench_rng, dec3_ladder)
    benchmark.pedantic(
        lambda: run_online(jobs, DecOnlineScheduler(dec3_ladder)),
        rounds=3,
        iterations=1,
    )


def test_e11_lower_bound_1000_jobs(benchmark, bench_rng, dec3_ladder):
    jobs = _jobs1000(bench_rng, dec3_ladder)
    benchmark.pedantic(lower_bound, args=(jobs, dec3_ladder), rounds=3, iterations=1)
