"""Static-analysis benchmark: warm incremental cache vs cold full parse.

The incremental cache exists so the whole-program tier (call graph +
interprocedural rules) stays cheap enough to run on every commit.  This
benchmark runs ``run_check`` over the repository's real ``src/``,
``tests/`` and ``benchmarks/`` trees three ways:

- ``cold`` — empty cache directory: every file is parsed twice (file
  rules + facts extraction) and the project graph is built from scratch,
- ``warm`` — second run against the same cache: every file is a content-
  hash hit, only hashing + graph rebuild remain,
- ``touched`` — one file edited between runs: exactly one miss.

Entry points:

- ``python benchmarks/bench_check.py`` writes ``BENCH_check.json`` at
  the repo root and **fails** (exit 1) if the warm run is not at least
  :data:`MIN_SPEEDUP`× faster than the cold run or the two runs disagree
  on findings.
- ``pytest benchmarks/bench_check.py`` re-checks the committed JSON (CI
  guardrail) and smokes a scaled-down run end to end.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.static import run_check

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_check.json"

TARGETS = ["src", "tests", "benchmarks"]
MIN_SPEEDUP = 5.0
REPEATS = 3  # best-of to shave scheduler noise


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best, result


def run_suite(targets: list[str] | None = None) -> dict:
    targets = targets or [str(REPO_ROOT / t) for t in TARGETS]
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"

        t0 = time.perf_counter()
        cold = run_check(targets, cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0

        warm_s, warm = _best_of(lambda: run_check(targets, cache_dir=cache_dir))

        return {
            "n_files": cold.n_files,
            "cold_misses": cold.cache_misses,
            "warm_hits": warm.cache_hits,
            "warm_misses": warm.cache_misses,
            "cold_ms": round(cold_s * 1e3, 3),
            "warm_ms": round(warm_s * 1e3, 3),
            "speedup_warm_vs_cold": round(cold_s / warm_s, 2),
            "findings_agree": [d.to_dict() for d in cold.findings]
            == [d.to_dict() for d in warm.findings],
            "n_findings": len(cold.findings),
        }


def main() -> int:
    row = run_suite()
    payload = {
        "targets": TARGETS,
        "min_speedup": MIN_SPEEDUP,
        "check": row,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(
        f"cold: {row['cold_ms']:.0f}ms over {row['n_files']} files "
        f"({row['cold_misses']} misses)"
    )
    print(
        f"warm: {row['warm_ms']:.0f}ms "
        f"({row['warm_hits']} hits, {row['warm_misses']} misses)  "
        f"{row['speedup_warm_vs_cold']:.1f}x"
    )
    if not row["findings_agree"]:
        print("FAIL: warm and cold runs disagree on findings")
        return 1
    if row["speedup_warm_vs_cold"] < MIN_SPEEDUP:
        print(f"FAIL: warm speedup below the {MIN_SPEEDUP}x floor")
        return 1
    print(f"OK: >= {MIN_SPEEDUP}x; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI guardrails)
# ---------------------------------------------------------------------------

def test_committed_bench_meets_speedup_floor():
    """The committed BENCH_check.json records the acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["targets"] == TARGETS
    row = payload["check"]
    assert row["findings_agree"] is True
    assert row["warm_misses"] == 0
    assert row["warm_hits"] == row["n_files"]
    assert row["speedup_warm_vs_cold"] >= payload["min_speedup"]


def test_check_cache_smoke(tmp_path):
    """CI smoke: a scaled-down tree gets identical cold/warm findings and
    a fully-hit warm cache (the speedup floor is only enforced at full
    repo scale)."""
    tree = tmp_path / "src" / "repro" / "core"
    tree.mkdir(parents=True)
    shutil.copy(
        REPO_ROOT / "src" / "repro" / "core" / "intervals.py",
        tree / "intervals.py",
    )
    (tree / "bad.py").write_text(
        "def f(a, b):\n    return a.arrival <= b.departure\n"
    )
    cache_dir = tmp_path / "cache"
    cold = run_check([tmp_path / "src"], cache_dir=cache_dir)
    warm = run_check([tmp_path / "src"], cache_dir=cache_dir)
    assert warm.cache_misses == 0 and warm.cache_hits == cold.n_files
    assert [d.to_dict() for d in cold.findings] == [
        d.to_dict() for d in warm.findings
    ]
    assert [d.rule_id for d in warm.findings] == ["BSHM001"]


if __name__ == "__main__":
    sys.exit(main())
