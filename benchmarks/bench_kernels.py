"""Substrate micro-benchmarks: the primitives everything else is built on.

Not tied to one experiment; tracks regression-sensitive kernels:
demand-profile construction (sum of pulses), the optimal-configuration DP,
interval-tree queries, the event sweep and feasibility validation.
"""

import numpy as np

from repro import (
    ConfigSolver,
    dec_ladder,
    dec_offline,
    elementary_segments,
    sum_pulses,
    sweep_busy_union,
    sweep_grouped_busy_time,
    sweep_peak_load,
    validate_schedule,
)
from repro.core.interval_tree import StaticIntervalTree


def test_kernel_sum_pulses_10k(benchmark, bench_rng):
    starts = bench_rng.uniform(0, 1000, size=10_000)
    durations = bench_rng.uniform(0.5, 20, size=10_000)
    pulses = [(float(a), float(a + d), 1.0) for a, d in zip(starts, durations)]
    profile = benchmark(sum_pulses, pulses)
    assert profile.max() > 0


def test_kernel_sweep_busy_union_10k(benchmark, bench_rng):
    starts = bench_rng.uniform(0, 1000, size=10_000)
    ends = starts + bench_rng.uniform(0.5, 20, size=10_000)
    union = benchmark(sweep_busy_union, starts, ends)
    assert union.length > 0


def test_kernel_sweep_peak_load_10k(benchmark, bench_rng):
    starts = bench_rng.uniform(0, 1000, size=10_000)
    ends = starts + bench_rng.uniform(0.5, 20, size=10_000)
    sizes = bench_rng.uniform(0.05, 1.0, size=10_000)
    peak = benchmark(sweep_peak_load, starts, ends, sizes)
    assert peak > 0


def test_kernel_sweep_grouped_busy_time_10k(benchmark, bench_rng):
    starts = bench_rng.uniform(0, 1000, size=10_000)
    ends = starts + bench_rng.uniform(0.5, 20, size=10_000)
    groups = bench_rng.integers(0, 500, size=10_000)
    busy = benchmark(sweep_grouped_busy_time, starts, ends, groups, 500)
    assert busy.sum() > 0


def test_kernel_config_solver(benchmark):
    ladder = dec_ladder(5)
    solver = ConfigSolver(ladder)
    demands = [
        tuple(sorted((float(x), float(x) * 0.6, float(x) * 0.3, float(x) * 0.1, 0.0), reverse=True))
        for x in np.linspace(0.5, 200, 300)
    ]

    def solve_all():
        return [solver.solve(d) for d in demands]

    results = benchmark(solve_all)
    assert all(r.rate >= 0 for r in results)


def test_kernel_interval_tree_queries(benchmark, bench_rng):
    lefts = bench_rng.uniform(0, 1000, size=20_000)
    rights = lefts + bench_rng.uniform(0.5, 30, size=20_000)
    tree = StaticIntervalTree(lefts, rights)
    probes = bench_rng.uniform(0, 1000, size=500)

    def run_queries():
        return sum(len(tree.stab(float(t))) for t in probes)

    hits = benchmark(run_queries)
    assert hits > 0


def test_kernel_elementary_segments_10k(benchmark, bench_rng, dec3_ladder):
    from repro import poisson_workload

    jobs = poisson_workload(10_000, bench_rng, max_size=dec3_ladder.capacity(3))
    segments = benchmark(elementary_segments, list(jobs))
    assert len(segments) > 0


def test_kernel_validation(benchmark, dec_workload_200, dec3_ladder):
    schedule = dec_offline(dec_workload_200, dec3_ladder)
    report = benchmark(validate_schedule, schedule, dec_workload_200)
    assert report.ok
