"""E16 bench — executing the [11] lower-bound adversary."""

from conftest import run_and_print

from repro import DecOnlineScheduler, dec_ladder
from repro.jobs.generators.adversary import batch_trap


def test_e16_table(benchmark):
    run_and_print("E16", benchmark)


def test_e16_adversary_kernel(benchmark):
    ladder = dec_ladder(3)
    jobs = benchmark(lambda: batch_trap(DecOnlineScheduler, ladder, mu=16.0))
    assert jobs.mu == 16.0
