"""E19 bench — windowed semi-online scheduling."""

from conftest import run_and_print

from repro import dec_offline
from repro.online.windowed import windowed_schedule


def test_e19_table(benchmark):
    run_and_print("E19", benchmark)


def test_e19_windowed_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = benchmark(
        lambda: windowed_schedule(dec_workload_200, dec3_ladder, dec_offline, window=10.0)
    )
    assert schedule.cost() > 0
