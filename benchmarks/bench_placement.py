"""Indexed placement engine vs the ``first_fit_reference`` scan: the
per-decision perf guardrail.

Two entry points, following ``bench_sweep.py``:

- ``python benchmarks/bench_placement.py`` — replays a 50k-job workload on a
  deep 6-type DEC ladder (thousands of concurrently busy machines) through
  DEC-ONLINE and INC-ONLINE twice: once with the O(log n) indexed engine,
  once with every pool forced onto the O(machines) linear-scan oracle.
  Writes ``BENCH_placement.json`` at the repo root and **fails** (exit 1)
  unless the indexed engine is at least :data:`MIN_SPEEDUP` times faster,
  or if the two engines disagree on a single placement.
- ``pytest benchmarks/bench_placement.py`` — a quicker smoke (6k jobs)
  asserting the indexed engine is never *slower* than the scan and places
  identically, plus a pytest-benchmark measurement of the indexed side.

Placement-sequence parity is pinned exhaustively by
``tests/property/test_placement_parity.py`` — this file spot-checks it on
the bench workload (cheap, and it keeps the speedup honest) but mainly
guards speed.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import dec_ladder
from repro.core.events import EventKind, event_stream
from repro.jobs.job import Job
from repro.jobs.jobset import JobSet
from repro.machines.fleet import IndexedPool
from repro.online.engine import JobView
import repro.online.dec_online as dec_mod
import repro.online.inc_online as inc_mod
from repro.online.dec_online import DecOnlineScheduler
from repro.online.inc_online import IncOnlineScheduler

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_placement.json"

N_JOBS = 50_000
LADDER_DEPTH = 6
SEED = 2020
MIN_SPEEDUP = 5.0


class _ScanPool(IndexedPool):
    """IndexedPool pinned to the linear-scan oracle (bench-only engine)."""

    __slots__ = ()

    def first_fit(self, uid, size):
        return self.first_fit_reference(uid, size)


def make_workload(n: int = N_JOBS, seed: int = SEED):
    """Interval jobs over a deep DEC ladder, ~3000 concurrently active.

    High steady-state concurrency is the point: it keeps thousands of
    machines busy per pool, which is where the linear scan's O(machines)
    probe cost dominates.  Returns the ladder plus the pre-unrolled event
    sequence — ``(JobView, None)`` for an arrival, ``(None, uid)`` for a
    departure — so the timed replay below measures engine work, not event
    bookkeeping shared by both engines.
    """
    ladder = dec_ladder(LADDER_DEPTH)
    rng = np.random.default_rng(seed)
    horizon = n / 200.0  # ~200 arrivals per time unit
    arrivals = np.sort(rng.uniform(0.0, horizon, size=n))
    durations = rng.uniform(5.0, 25.0, size=n)
    sizes = rng.uniform(0.05, ladder.capacity(ladder.m), size=n)
    jobs = JobSet(
        Job(size=float(s), arrival=float(a), departure=float(a + d), name=f"P{k}")
        for k, (a, d, s) in enumerate(zip(arrivals, durations, sizes))
    )
    events = []
    for ev in event_stream(jobs):
        job = ev.job
        if ev.kind is EventKind.ARRIVE:
            view = JobView(
                uid=job.uid, size=job.size, arrival=job.arrival, name=job.name
            )
            events.append((view, None))
        else:
            events.append((None, job.uid))
    return ladder, events


def replay(scheduler, events) -> list:
    """Drive the scheduler non-clairvoyantly; return the placement trace."""
    trace = []
    for view, departed_uid in events:
        if view is not None:
            trace.append(scheduler.on_arrival(view))
        else:
            scheduler.on_departure(departed_uid)
    return trace


SCHEDULERS = {
    "dec": (DecOnlineScheduler, dec_mod),
    "inc": (IncOnlineScheduler, inc_mod),
}


def _run_engine(name: str, ladder, events, *, reference: bool):
    """One timed replay; returns (seconds, placement trace, probes)."""
    cls, module = SCHEDULERS[name]
    original = module.IndexedPool
    if reference:
        module.IndexedPool = _ScanPool
    try:
        scheduler = cls(ladder)
    finally:
        module.IndexedPool = original
    t0 = time.perf_counter()
    trace = replay(scheduler, events)
    elapsed = time.perf_counter() - t0
    return elapsed, trace, scheduler.state.stats.probes


def run_suite(n: int = N_JOBS) -> list[dict]:
    """Time indexed vs scan for each scheduler; verify placement parity."""
    ladder, events = make_workload(n)
    rows = []
    for name in SCHEDULERS:
        t_fast, fast_trace, fast_probes = _run_engine(name, ladder, events, reference=False)
        t_ref, ref_trace, ref_probes = _run_engine(name, ladder, events, reference=True)
        if fast_trace != ref_trace:
            raise AssertionError(
                f"{name}: indexed engine disagrees with first_fit_reference"
            )
        decisions = len(fast_trace)
        rows.append(
            {
                "scheduler": name,
                "indexed_ms": round(t_fast * 1e3, 3),
                "reference_ms": round(t_ref * 1e3, 3),
                "speedup": round(t_ref / t_fast, 1),
                "indexed_probes_per_decision": round(fast_probes / decisions, 2),
                "reference_probes_per_decision": round(ref_probes / decisions, 2),
            }
        )
    return rows


def main() -> int:
    rows = run_suite()
    payload = {
        "workload": {
            "n_jobs": N_JOBS,
            "ladder": f"dec({LADDER_DEPTH})",
            "seed": SEED,
        },
        "min_speedup_required": MIN_SPEEDUP,
        "schedulers": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    width = max(len(r["scheduler"]) for r in rows)
    print(
        f"{'scheduler':<{width}}  {'indexed':>10}  {'reference':>10}  speedup"
        "  probes/decision (idx vs ref)"
    )
    for r in rows:
        print(
            f"{r['scheduler']:<{width}}  {r['indexed_ms']:>8.1f}ms"
            f"  {r['reference_ms']:>8.1f}ms  {r['speedup']:>6.1f}x"
            f"  {r['indexed_probes_per_decision']:>8.2f} vs"
            f" {r['reference_probes_per_decision']:.2f}"
        )
    slow = [r for r in rows if r["speedup"] < MIN_SPEEDUP]
    if slow:
        names = ", ".join(r["scheduler"] for r in slow)
        print(f"FAIL: below the {MIN_SPEEDUP}x floor: {names}")
        return 1
    print(f"OK: every scheduler >= {MIN_SPEEDUP}x faster; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI smoke + microbenchmarks)
# ---------------------------------------------------------------------------

def test_indexed_never_slower_than_reference():
    """CI smoke: on a 6k-job workload the indexed engine beats the scan
    for every scheduler (and places identically — checked inside)."""
    for row in run_suite(n=6_000):
        assert row["speedup"] >= 1.0, row


def test_committed_bench_shows_target_speedup():
    """The committed BENCH_placement.json records the >= 5x acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    schedulers = {r["scheduler"] for r in payload["schedulers"]}
    assert schedulers == set(SCHEDULERS)
    for row in payload["schedulers"]:
        assert row["speedup"] >= MIN_SPEEDUP, row


def test_bench_indexed_dec_replay_10k(benchmark):
    ladder, events = make_workload(10_000)

    def run():
        return replay(DecOnlineScheduler(ladder), events)

    trace = benchmark(run)
    assert len(trace) == 10_000


if __name__ == "__main__":
    sys.exit(main())
