"""E12 bench — Section II normalization overhead."""

from conftest import run_and_print

from repro import ec2_like_ladder, normalize


def test_e12_table(benchmark):
    run_and_print("E12", benchmark)


def test_e12_normalize_kernel(benchmark):
    ladder = ec2_like_ladder(8, price_exponent=0.9)
    norm = benchmark(normalize, ladder)
    assert norm.normalized.is_power_of_two_rates()
