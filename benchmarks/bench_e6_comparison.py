"""E6 bench — head-to-head comparison table (algorithms vs baselines)."""

from conftest import run_and_print

from repro import CheapestFitGreedy, run_online


def test_e6_table(benchmark):
    run_and_print("E6", benchmark)


def test_e6_baseline_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = benchmark(
        lambda: run_online(dec_workload_200, CheapestFitGreedy(dec3_ladder))
    )
    assert schedule.cost() > 0
