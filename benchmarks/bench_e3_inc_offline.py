"""E3 bench — Section IV: INC-OFFLINE 9-approximation."""

from conftest import run_and_print

from repro import inc_offline


def test_e3_table(benchmark):
    run_and_print("E3", benchmark)


def test_e3_inc_offline_kernel(benchmark, inc_workload_200, inc3_ladder):
    schedule = benchmark(inc_offline, inc_workload_200, inc3_ladder)
    assert schedule.cost() > 0
