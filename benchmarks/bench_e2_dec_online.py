"""E2 bench — Theorem 2: DEC-ONLINE 32(mu+1)-competitiveness.

Prints the E2 mu-sweep table and benchmarks the online event loop.
"""

from conftest import run_and_print

from repro import DecOnlineScheduler, run_online


def test_e2_table(benchmark):
    run_and_print("E2", benchmark)


def test_e2_dec_online_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = benchmark(
        lambda: run_online(dec_workload_200, DecOnlineScheduler(dec3_ladder))
    )
    assert schedule.cost() > 0
