"""E14 bench — uniform-size special case (extension experiment)."""

import numpy as np
from conftest import run_and_print

from repro import Job, JobSet, single_type_ladder
from repro.offline.uniform import uniform_track_schedule


def test_e14_table(benchmark):
    run_and_print("E14", benchmark)


def test_e14_track_packing_kernel(benchmark, bench_rng):
    arrivals = bench_rng.uniform(0, 100, size=500)
    durations = bench_rng.uniform(1, 8, size=500)
    jobs = JobSet(
        Job(1.0, float(a), float(a + d))
        for a, d in zip(arrivals, durations)
    )
    ladder = single_type_ladder(capacity=4.0)
    schedule = benchmark(uniform_track_schedule, jobs, ladder, 4)
    assert schedule.cost() > 0
