"""Shared benchmark fixtures.

Each bench module pairs an experiment (quick scale, table printed to stdout,
PASS asserted) with a pytest-benchmark measurement of the kernel that
experiment exercises.  Run with::

    pytest benchmarks/ --benchmark-only -s     # -s to see the tables
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import dec_ladder, inc_ladder, paper_fig2_ladder, uniform_workload


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2020)


@pytest.fixture(scope="session")
def dec3_ladder():
    return dec_ladder(3)


@pytest.fixture(scope="session")
def inc3_ladder():
    return inc_ladder(3)


@pytest.fixture(scope="session")
def fig2_ladder():
    return paper_fig2_ladder()


@pytest.fixture(scope="session")
def dec_workload_200(bench_rng, dec3_ladder):
    return uniform_workload(200, bench_rng, max_size=dec3_ladder.capacity(3))


@pytest.fixture(scope="session")
def inc_workload_200(bench_rng, inc3_ladder):
    return uniform_workload(200, bench_rng, max_size=inc3_ladder.capacity(3))


def run_and_print(experiment_id: str, benchmark=None) -> None:
    """Run an experiment at quick scale, print its table, assert it passed.

    When a pytest-benchmark fixture is passed, the experiment run itself is
    the benchmarked payload (one round), so the tables also appear under
    ``--benchmark-only``.
    """
    from repro.experiments import run_experiment

    if benchmark is not None:
        result = benchmark.pedantic(
            run_experiment, args=(experiment_id,), kwargs={"scale": "quick"},
            rounds=1, iterations=1,
        )
    else:
        result = run_experiment(experiment_id, scale="quick")
    print()
    print(result.render())
    assert result.passed, f"{experiment_id} bound violated"
