"""E7 bench — LB tightness and true ratios via the MILP oracle."""

from conftest import run_and_print

from repro import dec_ladder, solve_optimal, uniform_workload


def test_e7_table(benchmark):
    run_and_print("E7", benchmark)


def test_e7_milp_kernel(benchmark, bench_rng):
    ladder = dec_ladder(3)
    jobs = uniform_workload(6, bench_rng, max_size=ladder.capacity(3))
    result = benchmark.pedantic(
        solve_optimal, args=(jobs, ladder), rounds=3, iterations=1
    )
    assert result.cost > 0
