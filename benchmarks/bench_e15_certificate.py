"""E15 bench — Theorem-2 certificate machinery (extension experiment)."""

from conftest import run_and_print

from repro import DecOnlineScheduler, run_online
from repro.analysis.certificates import certify_dec_online


def test_e15_table(benchmark):
    run_and_print("E15", benchmark)


def test_e15_certificate_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = run_online(dec_workload_200, DecOnlineScheduler(dec3_ladder))
    cert = benchmark.pedantic(
        certify_dec_online,
        args=(dec_workload_200, dec3_ladder, schedule),
        rounds=3,
        iterations=1,
    )
    assert cert.lemma1_holds
