"""Crash-recovery benchmark: snapshot+delta restore vs full-trace replay.

The WAL's compaction exists so a restarted service does not pay O(all
events ever) to come back.  This benchmark drives a 25k-job (50k-event)
workload through a WAL-backed runtime with periodic compaction, then
measures three restore paths to the same state:

- ``full_replay`` — event-sourced :func:`replay_trace` over the complete
  trace (the pre-WAL baseline),
- ``wal_recover`` — :func:`repro.service.wal.recover`: latest snapshot +
  O(delta) segment replay,
- ``state_restore`` — the raw :func:`restore_state` with no delta at all
  (the floor ``wal_recover`` approaches right after a compaction).

Entry points:

- ``python benchmarks/bench_recovery.py`` writes ``BENCH_recovery.json``
  at the repo root and **fails** (exit 1) if ``wal_recover`` is not at
  least :data:`MIN_SPEEDUP`× faster than ``full_replay`` or recovers to a
  different assignment digest.
- ``pytest benchmarks/bench_recovery.py`` re-checks the committed JSON
  (CI guardrail) and smokes a scaled-down run end to end.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import assignment_digest, replay_trace, write_trace
from repro.service.runtime import SchedulerRuntime
from repro.service.state import capture_state, restore_state
from repro.service.wal import WALWriter, recover

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_recovery.json"

N_JOBS = 25_000  # 50k events: one submit + one depart per job
SEED = 2026
COMPACT_EVERY = 2_000
MIN_SPEEDUP = 5.0


def make_instance(n: int = N_JOBS, seed: int = SEED):
    ladder = dec_ladder(3)
    rng = np.random.default_rng(seed)
    jobs = uniform_workload(n, rng, max_size=ladder.capacity(3))
    return ladder, jobs


def drive_with_wal(runtime: SchedulerRuntime, wal: WALWriter, jobs) -> None:
    for ev in event_stream(jobs):
        if ev.kind is EventKind.ARRIVE:
            runtime.submit(ev.job.size, ev.job.arrival, name=ev.job.name,
                           uid=ev.job.uid)
        else:
            runtime.depart(ev.job.uid, ev.job.departure)
        wal.append_new()


def run_suite(n: int = N_JOBS, compact_every: int = COMPACT_EVERY) -> dict:
    ladder, jobs = make_instance(n)
    with tempfile.TemporaryDirectory() as tmp:
        wal_dir = Path(tmp) / "wal"
        trace_path = Path(tmp) / "run.jsonl"
        runtime = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])
        wal = WALWriter(
            wal_dir, runtime, fsync="never",  # measure restore, not disk sync
            segment_records=4_096, compact_every=compact_every,
        )
        t0 = time.perf_counter()
        drive_with_wal(runtime, wal, jobs)
        stream_s = time.perf_counter() - t0
        wal.sync()
        wal.close()
        write_trace(runtime, trace_path)
        digest = assignment_digest(runtime)

        t0 = time.perf_counter()
        replayed = replay_trace(trace_path)
        full_replay_s = time.perf_counter() - t0
        assert assignment_digest(replayed) == digest, "full replay diverged"

        t0 = time.perf_counter()
        recovered = recover(wal_dir)
        wal_recover_s = time.perf_counter() - t0
        assert assignment_digest(recovered.runtime) == digest, "recovery diverged"
        assert recovered.runtime.cost() == runtime.cost()

        state = capture_state(runtime)
        t0 = time.perf_counter()
        restored = restore_state(state)
        state_restore_s = time.perf_counter() - t0
        assert assignment_digest(restored) == digest

        return {
            "n_jobs": n,
            "events": runtime.n_events,
            "compact_every": compact_every,
            "stream_total_ms": round(stream_s * 1e3, 3),
            "delta_events_replayed": recovered.replayed,
            "full_replay_ms": round(full_replay_s * 1e3, 3),
            "wal_recover_ms": round(wal_recover_s * 1e3, 3),
            "state_restore_ms": round(state_restore_s * 1e3, 3),
            "speedup_vs_full_replay": round(full_replay_s / wal_recover_s, 2),
            "digest_match": True,
            "assignment_sha256": digest,
        }


def main() -> int:
    row = run_suite()
    payload = {
        "workload": {"n_jobs": N_JOBS, "ladder": "dec(3)", "seed": SEED},
        "min_speedup": MIN_SPEEDUP,
        "recovery": row,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"streamed {row['events']} events in {row['stream_total_ms']:.0f}ms "
          f"(compact every {row['compact_every']})")
    print(f"full-trace replay: {row['full_replay_ms']:.1f}ms")
    print(f"wal recover (snapshot + {row['delta_events_replayed']} delta): "
          f"{row['wal_recover_ms']:.1f}ms  "
          f"({row['speedup_vs_full_replay']:.1f}x)")
    print(f"pure state restore: {row['state_restore_ms']:.1f}ms")
    if row["speedup_vs_full_replay"] < MIN_SPEEDUP:
        print(f"FAIL: recovery speedup below the {MIN_SPEEDUP}x floor")
        return 1
    print(f"OK: >= {MIN_SPEEDUP}x; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI guardrails)
# ---------------------------------------------------------------------------

def test_committed_bench_meets_speedup_floor():
    """The committed BENCH_recovery.json records the acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    row = payload["recovery"]
    assert row["events"] == 2 * N_JOBS
    assert row["digest_match"] is True
    assert row["speedup_vs_full_replay"] >= payload["min_speedup"]
    assert row["delta_events_replayed"] < row["compact_every"]


def test_recovery_smoke_2k():
    """CI smoke: the scaled-down suite recovers digest-identically (the
    speedup floor is only enforced at full scale)."""
    row = run_suite(2_000, compact_every=500)
    assert row["digest_match"] is True
    assert row["delta_events_replayed"] < 500


if __name__ == "__main__":
    sys.exit(main())
