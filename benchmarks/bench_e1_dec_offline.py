"""E1 bench — Theorem 1: DEC-OFFLINE 14-approximation.

Prints the E1 ratio table and benchmarks the DEC-OFFLINE kernel.
"""

from conftest import run_and_print

from repro import dec_offline


def test_e1_table(benchmark):
    run_and_print("E1", benchmark)


def test_e1_dec_offline_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = benchmark(dec_offline, dec_workload_200, dec3_ladder)
    assert schedule.cost() > 0
