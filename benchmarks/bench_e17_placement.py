"""E17 bench — placement-order ablation."""

from conftest import run_and_print

from repro import place_jobs


def test_e17_table(benchmark):
    run_and_print("E17", benchmark)


def test_e17_size_order_kernel(benchmark, dec_workload_200):
    placement = benchmark(place_jobs, dec_workload_200, "size")
    assert placement.max_overlap() <= 2
