"""Streaming-service latency benchmark: the overhead guardrail.

Two entry points:

- ``python benchmarks/bench_service.py`` — drives a 10k-job workload
  through :class:`SchedulerRuntime` event by event, records per-event
  decision latency (p50/p99) and checkpoint/snapshot/restore times, writes
  the results to ``BENCH_service.json`` at the repo root and **fails**
  (exit 1) if p99 decision latency exceeds :data:`MAX_P99_MS`.
- ``pytest benchmarks/bench_service.py`` — a quicker smoke (2k jobs)
  asserting the streamed run stays exactly cost-equal to batch
  :func:`run_online`, plus pytest-benchmark measurements of the submit
  path and checkpoint round-trip.

Correctness equivalence is pinned exhaustively by
``tests/service/test_differential.py`` — this file only guards speed.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import dec_ladder, run_online, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.checkpoint import restore, snapshot
from repro.service.runtime import SchedulerRuntime, make_scheduler

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"

N_JOBS = 10_000
SEED = 2020
MAX_P99_MS = 5.0


def make_instance(n: int = N_JOBS, seed: int = SEED):
    ladder = dec_ladder(3)
    rng = np.random.default_rng(seed)
    jobs = uniform_workload(n, rng, max_size=ladder.capacity(3))
    return ladder, jobs


def drive(runtime: SchedulerRuntime, jobs) -> None:
    for ev in event_stream(jobs):
        if ev.kind is EventKind.ARRIVE:
            runtime.submit(ev.job.size, ev.job.arrival, name=ev.job.name, uid=ev.job.uid)
        else:
            runtime.depart(ev.job.uid, ev.job.departure)


def run_suite(n: int = N_JOBS) -> dict:
    """Stream ``n`` jobs through the runtime and measure every stage."""
    ladder, jobs = make_instance(n)
    runtime = SchedulerRuntime.create("dec", ladder, admission=["fits-ladder"])

    t0 = time.perf_counter()
    drive(runtime, jobs)
    stream_s = time.perf_counter() - t0

    hist = runtime.metrics.histogram("decision_latency_ms")

    t0 = time.perf_counter()
    snap = snapshot(runtime)
    snapshot_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    restore(snap)
    restore_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cost = runtime.cost()
    cost_s = time.perf_counter() - t0

    return {
        "n_jobs": n,
        "events": runtime.n_events,
        "stream_total_ms": round(stream_s * 1e3, 3),
        "events_per_s": round(runtime.n_events / stream_s),
        "decision_latency_ms": {
            "count": hist.count,
            "mean": round(hist.mean, 6),
            "p50": round(hist.percentile(50), 6),
            "p99": round(hist.percentile(99), 6),
            "max": round(hist.max, 6),
        },
        "snapshot_ms": round(snapshot_s * 1e3, 3),
        "restore_ms": round(restore_s * 1e3, 3),
        "running_cost_ms": round(cost_s * 1e3, 3),
        "final_cost": cost,
    }


def main() -> int:
    row = run_suite()
    payload = {
        "workload": {"n_jobs": N_JOBS, "ladder": "dec(3)", "seed": SEED},
        "max_p99_decision_ms": MAX_P99_MS,
        "service": row,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    lat = row["decision_latency_ms"]
    print(f"streamed {row['events']} events in {row['stream_total_ms']:.1f}ms "
          f"({row['events_per_s']} events/s)")
    print(f"decision latency: p50 {lat['p50']:.4f}ms  p99 {lat['p99']:.4f}ms  "
          f"max {lat['max']:.4f}ms")
    print(f"snapshot {row['snapshot_ms']:.1f}ms, restore {row['restore_ms']:.1f}ms, "
          f"running cost {row['running_cost_ms']:.1f}ms at {N_JOBS} jobs")
    if lat["p99"] > MAX_P99_MS:
        print(f"FAIL: p99 decision latency above the {MAX_P99_MS}ms ceiling")
        return 1
    print(f"OK: p99 under {MAX_P99_MS}ms; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI smoke + microbenchmarks)
# ---------------------------------------------------------------------------

def test_streaming_matches_batch_at_2k():
    """CI smoke: a 2k-job streamed run stays exactly cost-equal to batch."""
    ladder, jobs = make_instance(2_000)
    runtime = SchedulerRuntime.create("dec", ladder)
    drive(runtime, jobs)
    batch = run_online(jobs, make_scheduler("dec", ladder))
    assert runtime.schedule().cost() == batch.cost()


def test_committed_bench_meets_latency_ceiling():
    """The committed BENCH_service.json records the acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    assert payload["service"]["decision_latency_ms"]["p99"] <= payload["max_p99_decision_ms"]
    assert payload["service"]["events"] == 2 * N_JOBS


def test_bench_submit_depart_2k(benchmark):
    ladder, jobs = make_instance(2_000)

    def run():
        runtime = SchedulerRuntime.create("dec", ladder)
        drive(runtime, jobs)
        return runtime

    runtime = benchmark(run)
    assert runtime.n_events == 4_000


def test_bench_snapshot_restore_2k(benchmark):
    ladder, jobs = make_instance(2_000)
    runtime = SchedulerRuntime.create("dec", ladder)
    drive(runtime, jobs)

    def roundtrip():
        return restore(snapshot(runtime))

    restored = benchmark(roundtrip)
    assert restored.cost() == runtime.cost()


if __name__ == "__main__":
    sys.exit(main())
