"""E13 bench — value of clairvoyance (extension experiment)."""

from conftest import run_and_print

from repro.online.clairvoyant import DurationClassScheduler, run_clairvoyant


def test_e13_table(benchmark):
    run_and_print("E13", benchmark)


def test_e13_clairvoyant_kernel(benchmark, dec_workload_200, dec3_ladder):
    schedule = benchmark(
        lambda: run_clairvoyant(dec_workload_200, DurationClassScheduler(dec3_ladder))
    )
    assert schedule.cost() > 0
