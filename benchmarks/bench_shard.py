"""Sharded-service throughput + snapshot-restore benchmark: the scale guardrail.

Two entry points:

- ``python benchmarks/bench_shard.py`` — partitions the dec(3) 10k-job
  workload across 4 shard workers with the router's own hash routing,
  measures each shard's apply throughput independently, and reports the
  **aggregate** events/s (the sum of per-shard rates — what N idle cores
  would sustain; single-core CI cannot run the shards truly in parallel,
  so the wall-clock figures are reported alongside, unweighted).  Also
  times a 50k-event SQLite restore both ways: full event replay vs
  latest-snapshot + O(delta).  Writes ``BENCH_shard.json`` at the repo
  root and **fails** (exit 1) if aggregate speedup < :data:`MIN_SPEEDUP`
  or snapshot restore advantage < :data:`MIN_RESTORE_SPEEDUP`.
- ``pytest benchmarks/bench_shard.py`` — asserts the committed
  ``BENCH_shard.json`` still meets both floors, plus a 1k-job smoke
  checking the partitioned shard run covers the full stream.

Correctness (byte-identical W=1, error parity, fail-stop) is pinned by
``tests/service/test_shard.py`` — this file only guards speed.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import dec_ladder, uniform_workload
from repro.core.events import EventKind, event_stream
from repro.service.runtime import SchedulerRuntime
from repro.service.shard import WorkerSpec, ShardWorker, shard_for_submit
from repro.service.storage import StoreWriter, open_store, restore_from_store

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_shard.json"

N_JOBS = 10_000
N_WORKERS = 4
SEED = 2020
BATCH = 32  # router pump batch size
MIN_SPEEDUP = 5.0
RESTORE_EVENTS = 50_000
MIN_RESTORE_SPEEDUP = 5.0

LADDER = dec_ladder(3)
CAPS = [t.capacity for t in LADDER.types]
CONFIG = {
    "scheduler": "dec",
    "ladder": [[t.capacity, t.rate] for t in LADDER.types],
    "admission": ["fits-ladder"],
}


def make_requests(n_jobs: int, seed: int = SEED) -> list[dict]:
    """The wire request stream for a dec(3) uniform workload."""
    rng = np.random.default_rng(seed)
    jobs = uniform_workload(n_jobs, rng, max_size=LADDER.capacity(len(CAPS)))
    requests = []
    for ev in event_stream(jobs):
        if ev.kind is EventKind.ARRIVE:
            requests.append(
                {"op": "submit", "uid": ev.job.uid, "size": ev.job.size,
                 "t": ev.job.arrival}
            )
        else:
            requests.append({"op": "depart", "uid": ev.job.uid, "t": ev.job.departure})
    return requests


def partition(requests: list[dict], n_shards: int) -> list[list[dict]]:
    """Hash-route each request exactly as the router does."""
    shards: list[list[dict]] = [[] for _ in range(n_shards)]
    home: dict[int, int] = {}
    for request in requests:
        uid = int(request["uid"])
        if request["op"] == "submit":
            shard = shard_for_submit(float(request["size"]), uid, n_shards, CAPS)
            home[uid] = shard
        else:
            shard = home[uid]
        shards[shard].append(request)
    return shards


def apply_in_batches(worker: ShardWorker, requests: list[dict]) -> float:
    """Apply the shard's stream in router-sized batches; returns seconds."""
    t0 = time.perf_counter()
    for i in range(0, len(requests), BATCH):
        responses = worker.apply(requests[i:i + BATCH])
        for response in responses:
            if not response.get("ok"):
                raise AssertionError(f"benchmark request failed: {response}")
    return time.perf_counter() - t0


def run_throughput(n_jobs: int = N_JOBS, n_workers: int = N_WORKERS) -> dict:
    """Single-loop baseline vs per-shard rates on the same workload."""
    requests = make_requests(n_jobs)

    single = ShardWorker(WorkerSpec(shard=0, n_shards=1, config=CONFIG))
    single_s = apply_in_batches(single, requests)
    single_rate = len(requests) / single_s

    shard_rows = []
    wall_s = 0.0
    for shard, shard_requests in enumerate(partition(requests, n_workers)):
        worker = ShardWorker(
            WorkerSpec(shard=shard, n_shards=n_workers, config=CONFIG)
        )
        elapsed = apply_in_batches(worker, shard_requests)
        wall_s += elapsed
        shard_rows.append(
            {
                "shard": shard,
                "events": len(shard_requests),
                "seconds": round(elapsed, 4),
                "events_per_s": round(len(shard_requests) / elapsed),
            }
        )
    covered = sum(row["events"] for row in shard_rows)
    assert covered == len(requests), (covered, len(requests))
    aggregate_rate = sum(row["events_per_s"] for row in shard_rows)

    return {
        "n_jobs": n_jobs,
        "events": len(requests),
        "workers": n_workers,
        "batch": BATCH,
        "single_loop": {
            "seconds": round(single_s, 4),
            "events_per_s": round(single_rate),
        },
        "shards": shard_rows,
        "aggregate_events_per_s": round(aggregate_rate),
        "sequential_wall_s": round(wall_s, 4),
        "speedup": round(aggregate_rate / single_rate, 3),
    }


def run_restore(n_events: int = RESTORE_EVENTS) -> dict:
    """Full-replay vs snapshot+delta restore of a SQLite event log."""
    requests = make_requests(n_events // 2)
    with tempfile.TemporaryDirectory() as tmp:
        replay_store = open_store(f"sqlite:{Path(tmp) / 'replay.db'}")
        snap_store = open_store(f"sqlite:{Path(tmp) / 'snap.db'}")
        for store in (replay_store, snap_store):
            runtime = SchedulerRuntime.create(
                "dec", LADDER, admission=["fits-ladder"]
            )
            writer = StoreWriter(store, runtime, sync="never")
            for request in requests:
                if request["op"] == "submit":
                    runtime.submit(
                        request["size"], request["t"], uid=request["uid"]
                    )
                else:
                    runtime.depart(request["uid"], request["t"])
            writer.append_new()
            if store is snap_store:
                writer.compact()  # snapshot + prune: restore becomes O(delta)
            writer.close()

        replay_store = open_store(f"sqlite:{Path(tmp) / 'replay.db'}")
        t0 = time.perf_counter()
        full = restore_from_store(replay_store)
        replay_s = time.perf_counter() - t0
        replay_store.close()

        snap_store = open_store(f"sqlite:{Path(tmp) / 'snap.db'}")
        t0 = time.perf_counter()
        fast = restore_from_store(snap_store)
        snapshot_s = time.perf_counter() - t0
        snap_store.close()

    assert full.n_events == fast.n_events == len(requests)
    assert full.snapshot_n is None and full.replayed == len(requests)
    assert fast.snapshot_n == len(requests) and fast.replayed == 0
    return {
        "events": len(requests),
        "full_replay_ms": round(replay_s * 1e3, 3),
        "snapshot_restore_ms": round(snapshot_s * 1e3, 3),
        "speedup": round(replay_s / snapshot_s, 3),
    }


def main() -> int:
    throughput = run_throughput()
    restore_row = run_restore()
    payload = {
        "workload": {"n_jobs": N_JOBS, "ladder": "dec(3)", "seed": SEED},
        "min_speedup": MIN_SPEEDUP,
        "min_restore_speedup": MIN_RESTORE_SPEEDUP,
        "throughput": throughput,
        "restore": restore_row,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    single = throughput["single_loop"]["events_per_s"]
    print(
        f"single loop: {single} events/s; {throughput['workers']} shards "
        f"aggregate {throughput['aggregate_events_per_s']} events/s "
        f"({throughput['speedup']}x, sequential wall "
        f"{throughput['sequential_wall_s']}s)"
    )
    print(
        f"restore at {restore_row['events']} events: full replay "
        f"{restore_row['full_replay_ms']}ms vs snapshot "
        f"{restore_row['snapshot_restore_ms']}ms "
        f"({restore_row['speedup']}x)"
    )
    failed = False
    if throughput["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: aggregate speedup below the {MIN_SPEEDUP}x floor")
        failed = True
    if restore_row["speedup"] < MIN_RESTORE_SPEEDUP:
        print(f"FAIL: snapshot restore below the {MIN_RESTORE_SPEEDUP}x floor")
        failed = True
    if failed:
        return 1
    print(f"OK: both floors met; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI floor checks + smoke)
# ---------------------------------------------------------------------------

def test_committed_bench_meets_floors():
    """The committed BENCH_shard.json records the acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    assert payload["throughput"]["workers"] == N_WORKERS
    assert payload["throughput"]["speedup"] >= payload["min_speedup"]
    assert payload["restore"]["speedup"] >= payload["min_restore_speedup"]
    assert payload["restore"]["events"] == RESTORE_EVENTS


def test_partitioned_shards_cover_stream_at_1k():
    """CI smoke: the hash partition covers every event exactly once and
    every shard applies its slice cleanly."""
    requests = make_requests(1_000, seed=7)
    shards = partition(requests, N_WORKERS)
    assert sum(len(s) for s in shards) == len(requests)
    assert all(shards), "every shard should receive work"
    total = 0
    for shard, shard_requests in enumerate(shards):
        worker = ShardWorker(
            WorkerSpec(shard=shard, n_shards=N_WORKERS, config=CONFIG)
        )
        for response in worker.apply(shard_requests):
            assert response.get("ok"), response
        total += worker.runtime.n_events
    assert total == len(requests)


if __name__ == "__main__":
    sys.exit(main())
