"""E9 bench — Figure 2 regeneration (machine-type forest)."""

from conftest import run_and_print


def test_e9_figure(benchmark):
    run_and_print("E9", benchmark)


def test_e9_forest_kernel(benchmark, fig2_ladder):
    forest = benchmark(lambda: fig2_ladder.forest())
    assert len(forest.roots) == 3
