"""Sweep kernels vs their ``*_reference`` oracles: the perf guardrail.

Three entry points:

- ``python benchmarks/bench_sweep.py`` — times every sweep kernel against
  its naive reference on a 10k-job workload, writes the results to
  ``BENCH_sweep.json`` at the repo root and **fails** (exit 1) unless each
  kernel is at least :data:`MIN_SPEEDUP` times faster than its oracle.
  A previously committed vectorized ladder section is carried forward
  unchanged, so routine regenerations don't erase the acceptance record.
- ``python benchmarks/bench_sweep.py --ladder`` — additionally runs the
  100k-1M vectorized-vs-sweep job ladder (:data:`VEC_LADDER_RUNGS`) and
  **fails** unless the 1M rung's aggregate speedup clears
  :data:`MIN_VEC_SPEEDUP_1M`.  This is the nightly / acceptance run.
- ``pytest benchmarks/bench_sweep.py`` — a quicker smoke (2k jobs sweep vs
  reference, 50k jobs vectorized vs sweep) asserting the fast tier is never
  *slower*, plus pytest-benchmark measurements of the sweep side alone.

The ladder's "sweep tier" deliberately times the *pre-vectorization entry
bodies* — Python list comprehensions over ``Job`` objects feeding the sweep
kernels (and ``sum_pulses``'s per-segment compaction) — because that is the
path the dispatch in :mod:`repro.core.vectorized` replaced; the vectorized
tier runs on a warm :meth:`JobSet.to_arrays`-style columnar view.

The references are the retired per-time-point implementations (see
``repro/core/sweep.py``); correctness equivalence is pinned separately by
``tests/property/test_sweep_oracle.py`` and
``tests/property/test_vectorized_oracle.py`` — this file only guards speed.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    Job,
    busy_time_reference,
    busy_union_reference,
    demand_profile_reference,
    grouped_busy_time_reference,
    peak_load_reference,
    sum_pulses,
    sweep_busy_time,
    sweep_busy_union,
    sweep_demand_profile,
    sweep_grouped_busy_time,
    sweep_nested_demand,
    sweep_peak_load,
    vec_busy_time,
    vec_demand_profile,
    vec_grouped_busy_time,
    vec_nested_demand,
    vec_peak_load,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sweep.json"

N_JOBS = 10_000
N_MACHINES = 500
MIN_SPEEDUP = 5.0

#: job counts of the vectorized-vs-sweep ladder (the acceptance rungs)
VEC_LADDER_RUNGS = (100_000, 300_000, 1_000_000)
#: required aggregate (total sweep time / total vectorized time) at 1M jobs
MIN_VEC_SPEEDUP_1M = 5.0
#: every individual kernel must at least not lose at every rung
MIN_VEC_KERNEL_SPEEDUP = 1.0
#: capacities used by the ladder's nested-demand rung
LADDER_CAPACITIES = (0.2, 0.5, 1.0)


def make_workload(n: int, n_machines: int = N_MACHINES, seed: int = 2020):
    """Synthetic interval batch shaped like the E-series workloads."""
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, 1000.0, size=n)
    ends = starts + rng.uniform(0.5, 20.0, size=n)
    sizes = rng.uniform(0.05, 1.0, size=n)
    groups = rng.integers(0, n_machines, size=n)
    return starts, ends, sizes, groups


def _best_of(fn, *args, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def run_suite(n: int = N_JOBS, *, ref_reps: int = 1, sweep_reps: int = 5) -> list[dict]:
    """Time each sweep kernel against its reference; return one row per pair.

    ``ref_reps`` defaults to 1 because two of the references are quadratic —
    at 10k jobs a single run is already seconds.
    """
    starts, ends, sizes, groups = make_workload(n)
    n_machines = int(groups.max()) + 1
    pulses = [(float(a), float(b), float(s)) for a, b, s in zip(starts, ends, sizes)]

    pairs = [
        (
            "demand_profile",
            lambda: sweep_demand_profile(pulses),
            lambda: demand_profile_reference(pulses),
        ),
        (
            "busy_union",
            lambda: sweep_busy_union(starts, ends),
            lambda: busy_union_reference(starts, ends),
        ),
        (
            "busy_time",
            lambda: sweep_busy_time(starts, ends),
            lambda: busy_time_reference(starts, ends),
        ),
        (
            "peak_load",
            lambda: sweep_peak_load(starts, ends, sizes),
            lambda: peak_load_reference(starts, ends, sizes),
        ),
        (
            "grouped_busy_time",
            lambda: sweep_grouped_busy_time(starts, ends, groups, n_machines),
            lambda: grouped_busy_time_reference(starts, ends, groups, n_machines),
        ),
    ]

    rows = []
    for name, fast, ref in pairs:
        t_fast = _best_of(fast, reps=sweep_reps)
        t_ref = _best_of(ref, reps=ref_reps)
        rows.append(
            {
                "kernel": name,
                "sweep_ms": round(t_fast * 1e3, 3),
                "reference_ms": round(t_ref * 1e3, 3),
                "speedup": round(t_ref / t_fast, 1),
            }
        )
    return rows


def run_vec_ladder(
    rungs: tuple[int, ...] = VEC_LADDER_RUNGS,
    *,
    sweep_reps: int = 1,
    vec_reps: int = 3,
) -> list[dict]:
    """Vectorized-vs-sweep timings at each ladder rung; one dict per rung.

    Sweep tier = the retired object-path entry bodies (list comprehensions
    over ``Job`` objects into the sweep kernels); vectorized tier = the
    :mod:`repro.core.vectorized` kernels on warm contiguous columns.
    """
    out = []
    for n in rungs:
        starts, ends, sizes, groups = make_workload(n)
        n_machines = int(groups.max()) + 1
        jobs = [
            Job(size=float(s), arrival=float(a), departure=float(b))
            for a, b, s in zip(starts, ends, sizes)
        ]
        sa = np.ascontiguousarray(starts)
        ea = np.ascontiguousarray(ends)
        za = np.ascontiguousarray(sizes)
        ga = np.ascontiguousarray(groups)
        glist = list(groups)

        pairs = [
            (
                "demand_profile",
                lambda: sum_pulses(
                    [(j.arrival, j.departure, j.size) for j in jobs]
                ),
                lambda: vec_demand_profile(sa, ea, za),
            ),
            (
                "busy_time",
                lambda: sweep_busy_time(
                    [j.arrival for j in jobs], [j.departure for j in jobs]
                ),
                lambda: vec_busy_time(sa, ea),
            ),
            (
                "peak_load",
                lambda: sweep_peak_load(
                    [j.arrival for j in jobs],
                    [j.departure for j in jobs],
                    [j.size for j in jobs],
                ),
                lambda: vec_peak_load(sa, ea, za),
            ),
            (
                "grouped_busy_time",
                lambda: sweep_grouped_busy_time(
                    [j.arrival for j in jobs],
                    [j.departure for j in jobs],
                    glist,
                    n_machines,
                ),
                lambda: vec_grouped_busy_time(sa, ea, ga, n_machines),
            ),
            (
                "nested_demand",
                lambda: sweep_nested_demand(jobs, LADDER_CAPACITIES),
                lambda: vec_nested_demand(sa, ea, za, LADDER_CAPACITIES),
            ),
        ]

        rows = []
        total_sweep = total_vec = 0.0
        for name, sweep_fn, vec_fn in pairs:
            t_sweep = _best_of(sweep_fn, reps=sweep_reps)
            t_vec = _best_of(vec_fn, reps=vec_reps)
            total_sweep += t_sweep
            total_vec += t_vec
            rows.append(
                {
                    "kernel": name,
                    "sweep_ms": round(t_sweep * 1e3, 3),
                    "vectorized_ms": round(t_vec * 1e3, 3),
                    "speedup": round(t_sweep / t_vec, 1),
                }
            )
        out.append(
            {
                "n_jobs": n,
                "kernels": rows,
                "total_sweep_ms": round(total_sweep * 1e3, 3),
                "total_vectorized_ms": round(total_vec * 1e3, 3),
                "total_speedup": round(total_sweep / total_vec, 1),
            }
        )
    return out


def _print_ladder(rungs: list[dict]) -> None:
    for rung in rungs:
        print(f"-- vectorized ladder @ {rung['n_jobs']:,} jobs --")
        width = max(len(r["kernel"]) for r in rung["kernels"])
        print(f"{'kernel':<{width}}  {'sweep':>11}  {'vectorized':>11}  speedup")
        for r in rung["kernels"]:
            print(
                f"{r['kernel']:<{width}}  {r['sweep_ms']:>9.1f}ms"
                f"  {r['vectorized_ms']:>9.1f}ms  {r['speedup']:>6.1f}x"
            )
        print(
            f"{'TOTAL':<{width}}  {rung['total_sweep_ms']:>9.1f}ms"
            f"  {rung['total_vectorized_ms']:>9.1f}ms"
            f"  {rung['total_speedup']:>6.1f}x"
        )


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    with_ladder = "--ladder" in args

    rows = run_suite()
    payload = {
        "workload": {"n_jobs": N_JOBS, "n_machines": N_MACHINES, "seed": 2020},
        "min_speedup_required": MIN_SPEEDUP,
        "kernels": rows,
    }
    if with_ladder:
        payload["vec_ladder"] = {
            "rungs": run_vec_ladder(),
            "min_total_speedup_at_1m": MIN_VEC_SPEEDUP_1M,
            "min_kernel_speedup": MIN_VEC_KERNEL_SPEEDUP,
        }
    else:
        # keep the committed acceptance ladder: the default (CI smoke) run
        # only refreshes the 10k sweep-vs-reference section
        try:
            payload["vec_ladder"] = json.loads(OUTPUT.read_text())["vec_ladder"]
        except (OSError, KeyError, json.JSONDecodeError):
            pass
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")

    width = max(len(r["kernel"]) for r in rows)
    print(f"{'kernel':<{width}}  {'sweep':>10}  {'reference':>10}  speedup")
    for r in rows:
        print(
            f"{r['kernel']:<{width}}  {r['sweep_ms']:>8.3f}ms"
            f"  {r['reference_ms']:>8.3f}ms  {r['speedup']:>6.1f}x"
        )
    slow = [r for r in rows if r["speedup"] < MIN_SPEEDUP]
    if slow:
        names = ", ".join(r["kernel"] for r in slow)
        print(f"FAIL: below the {MIN_SPEEDUP}x floor: {names}")
        return 1
    if with_ladder:
        ladder = payload["vec_ladder"]["rungs"]
        _print_ladder(ladder)
        top = next(r for r in ladder if r["n_jobs"] == max(VEC_LADDER_RUNGS))
        if top["total_speedup"] < MIN_VEC_SPEEDUP_1M:
            print(
                f"FAIL: 1M-rung aggregate {top['total_speedup']}x below the "
                f"{MIN_VEC_SPEEDUP_1M}x vectorized floor"
            )
            return 1
        lagging = [
            (rung["n_jobs"], r["kernel"])
            for rung in ladder
            for r in rung["kernels"]
            if r["speedup"] < MIN_VEC_KERNEL_SPEEDUP
        ]
        if lagging:
            print(f"FAIL: vectorized kernels slower than sweep: {lagging}")
            return 1
    print(f"OK: every kernel >= {MIN_SPEEDUP}x faster; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI smoke + microbenchmarks)
# ---------------------------------------------------------------------------

def test_sweep_never_slower_than_reference():
    """CI smoke: on a 2k-job workload every sweep kernel beats its oracle."""
    for row in run_suite(n=2_000):
        assert row["speedup"] >= 1.0, row


def test_committed_bench_shows_target_speedup():
    """The committed BENCH_sweep.json records the >= 5x acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    kernels = {r["kernel"] for r in payload["kernels"]}
    assert kernels == {
        "demand_profile",
        "busy_union",
        "busy_time",
        "peak_load",
        "grouped_busy_time",
    }
    for row in payload["kernels"]:
        assert row["speedup"] >= MIN_SPEEDUP, row


def test_vectorized_never_slower_than_sweep_smoke():
    """CI smoke: at 50k jobs the vectorized tier beats the object path in
    aggregate (per-kernel timing is too noisy for a hard floor in CI)."""
    (rung,) = run_vec_ladder(rungs=(50_000,), vec_reps=3)
    assert rung["total_speedup"] >= 1.0, rung


def test_committed_vec_ladder_shows_target_speedup():
    """The committed ladder records the 1M-rung >= 5x acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    ladder = payload["vec_ladder"]
    rung_sizes = [r["n_jobs"] for r in ladder["rungs"]]
    assert rung_sizes == list(VEC_LADDER_RUNGS)
    expected = {
        "demand_profile",
        "busy_time",
        "peak_load",
        "grouped_busy_time",
        "nested_demand",
    }
    for rung in ladder["rungs"]:
        assert {r["kernel"] for r in rung["kernels"]} == expected
        for row in rung["kernels"]:
            assert row["speedup"] >= MIN_VEC_KERNEL_SPEEDUP, (rung["n_jobs"], row)
    top = next(
        r for r in ladder["rungs"] if r["n_jobs"] == max(VEC_LADDER_RUNGS)
    )
    assert top["total_speedup"] >= MIN_VEC_SPEEDUP_1M, top


def test_bench_sweep_demand_profile_10k(benchmark):
    starts, ends, sizes, _ = make_workload(N_JOBS)
    pulses = [(float(a), float(b), float(s)) for a, b, s in zip(starts, ends, sizes)]
    profile = benchmark(sweep_demand_profile, pulses)
    assert profile.max() > 0


def test_bench_sweep_grouped_busy_time_10k(benchmark):
    starts, ends, _, groups = make_workload(N_JOBS)
    busy = benchmark(sweep_grouped_busy_time, starts, ends, groups, N_MACHINES)
    assert busy.sum() > 0


def test_bench_sweep_nested_demand_10k(benchmark):
    from repro import Job

    starts, ends, sizes, _ = make_workload(N_JOBS)
    jobs = [
        Job(size=float(s), arrival=float(a), departure=float(b))
        for a, b, s in zip(starts, ends, sizes)
    ]
    times, active, demand = benchmark(sweep_nested_demand, jobs, [0.2, 0.5, 1.0])
    assert demand.shape[0] == 3 and active.max() > 0


if __name__ == "__main__":
    sys.exit(main())
