"""Sweep kernels vs their ``*_reference`` oracles: the perf guardrail.

Two entry points:

- ``python benchmarks/bench_sweep.py`` — times every sweep kernel against
  its naive reference on a 10k-job workload, writes the results to
  ``BENCH_sweep.json`` at the repo root and **fails** (exit 1) unless each
  kernel is at least :data:`MIN_SPEEDUP` times faster than its oracle.
- ``pytest benchmarks/bench_sweep.py`` — a quicker smoke (2k jobs) asserting
  the sweep path is never *slower* than the reference, plus pytest-benchmark
  measurements of the sweep side alone.

The references are the retired per-time-point implementations (see
``repro/core/sweep.py``); correctness equivalence is pinned separately by
``tests/property/test_sweep_oracle.py`` — this file only guards speed.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    busy_time_reference,
    busy_union_reference,
    demand_profile_reference,
    grouped_busy_time_reference,
    peak_load_reference,
    sweep_busy_time,
    sweep_busy_union,
    sweep_demand_profile,
    sweep_grouped_busy_time,
    sweep_nested_demand,
    sweep_peak_load,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sweep.json"

N_JOBS = 10_000
N_MACHINES = 500
MIN_SPEEDUP = 5.0


def make_workload(n: int, n_machines: int = N_MACHINES, seed: int = 2020):
    """Synthetic interval batch shaped like the E-series workloads."""
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, 1000.0, size=n)
    ends = starts + rng.uniform(0.5, 20.0, size=n)
    sizes = rng.uniform(0.05, 1.0, size=n)
    groups = rng.integers(0, n_machines, size=n)
    return starts, ends, sizes, groups


def _best_of(fn, *args, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def run_suite(n: int = N_JOBS, *, ref_reps: int = 1, sweep_reps: int = 5) -> list[dict]:
    """Time each sweep kernel against its reference; return one row per pair.

    ``ref_reps`` defaults to 1 because two of the references are quadratic —
    at 10k jobs a single run is already seconds.
    """
    starts, ends, sizes, groups = make_workload(n)
    n_machines = int(groups.max()) + 1
    pulses = [(float(a), float(b), float(s)) for a, b, s in zip(starts, ends, sizes)]

    pairs = [
        (
            "demand_profile",
            lambda: sweep_demand_profile(pulses),
            lambda: demand_profile_reference(pulses),
        ),
        (
            "busy_union",
            lambda: sweep_busy_union(starts, ends),
            lambda: busy_union_reference(starts, ends),
        ),
        (
            "busy_time",
            lambda: sweep_busy_time(starts, ends),
            lambda: busy_time_reference(starts, ends),
        ),
        (
            "peak_load",
            lambda: sweep_peak_load(starts, ends, sizes),
            lambda: peak_load_reference(starts, ends, sizes),
        ),
        (
            "grouped_busy_time",
            lambda: sweep_grouped_busy_time(starts, ends, groups, n_machines),
            lambda: grouped_busy_time_reference(starts, ends, groups, n_machines),
        ),
    ]

    rows = []
    for name, fast, ref in pairs:
        t_fast = _best_of(fast, reps=sweep_reps)
        t_ref = _best_of(ref, reps=ref_reps)
        rows.append(
            {
                "kernel": name,
                "sweep_ms": round(t_fast * 1e3, 3),
                "reference_ms": round(t_ref * 1e3, 3),
                "speedup": round(t_ref / t_fast, 1),
            }
        )
    return rows


def main() -> int:
    rows = run_suite()
    payload = {
        "workload": {"n_jobs": N_JOBS, "n_machines": N_MACHINES, "seed": 2020},
        "min_speedup_required": MIN_SPEEDUP,
        "kernels": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    width = max(len(r["kernel"]) for r in rows)
    print(f"{'kernel':<{width}}  {'sweep':>10}  {'reference':>10}  speedup")
    for r in rows:
        print(
            f"{r['kernel']:<{width}}  {r['sweep_ms']:>8.3f}ms"
            f"  {r['reference_ms']:>8.3f}ms  {r['speedup']:>6.1f}x"
        )
    slow = [r for r in rows if r["speedup"] < MIN_SPEEDUP]
    if slow:
        names = ", ".join(r["kernel"] for r in slow)
        print(f"FAIL: below the {MIN_SPEEDUP}x floor: {names}")
        return 1
    print(f"OK: every kernel >= {MIN_SPEEDUP}x faster; written to {OUTPUT.name}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI smoke + microbenchmarks)
# ---------------------------------------------------------------------------

def test_sweep_never_slower_than_reference():
    """CI smoke: on a 2k-job workload every sweep kernel beats its oracle."""
    for row in run_suite(n=2_000):
        assert row["speedup"] >= 1.0, row


def test_committed_bench_shows_target_speedup():
    """The committed BENCH_sweep.json records the >= 5x acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    kernels = {r["kernel"] for r in payload["kernels"]}
    assert kernels == {
        "demand_profile",
        "busy_union",
        "busy_time",
        "peak_load",
        "grouped_busy_time",
    }
    for row in payload["kernels"]:
        assert row["speedup"] >= MIN_SPEEDUP, row


def test_bench_sweep_demand_profile_10k(benchmark):
    starts, ends, sizes, _ = make_workload(N_JOBS)
    pulses = [(float(a), float(b), float(s)) for a, b, s in zip(starts, ends, sizes)]
    profile = benchmark(sweep_demand_profile, pulses)
    assert profile.max() > 0


def test_bench_sweep_grouped_busy_time_10k(benchmark):
    starts, ends, _, groups = make_workload(N_JOBS)
    busy = benchmark(sweep_grouped_busy_time, starts, ends, groups, N_MACHINES)
    assert busy.sum() > 0


def test_bench_sweep_nested_demand_10k(benchmark):
    from repro import Job

    starts, ends, sizes, _ = make_workload(N_JOBS)
    jobs = [
        Job(size=float(s), arrival=float(a), departure=float(b))
        for a, b, s in zip(starts, ends, sizes)
    ]
    times, active, demand = benchmark(sweep_nested_demand, jobs, [0.2, 0.5, 1.0])
    assert demand.shape[0] == 3 and active.max() > 0


if __name__ == "__main__":
    sys.exit(main())
