"""E8 bench — Figure 1 regeneration (demand-chart placement)."""

from conftest import run_and_print

from repro import place_jobs
from repro.experiments.e08_fig1 import fig1_jobs


def test_e8_figure(benchmark):
    run_and_print("E8", benchmark)


def test_e8_placement_kernel(benchmark):
    jobs = fig1_jobs()
    placement = benchmark(place_jobs, jobs)
    assert placement.max_overlap() <= 2
