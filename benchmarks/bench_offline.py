"""Columnar offline peeling vs the object path: the perf guardrail.

Three entry points:

- ``python benchmarks/bench_offline.py`` — runs every offline algorithm
  (DEC / INC / GEN peeling loops plus the single-type Dual-Coloring core)
  through both engines on a 10k-job workload, asserts the assignments are
  identical, writes the timings to ``BENCH_offline.json`` at the repo root
  and **fails** (exit 1) unless every algorithm clears :data:`MIN_SPEEDUP`.
  A previously committed ladder section is carried forward unchanged, so
  routine regenerations don't erase the acceptance record.
- ``python benchmarks/bench_offline.py --ladder`` — additionally runs the
  10k/50k/200k DEC-OFFLINE job ladder (:data:`OFFLINE_LADDER_RUNGS`) and
  **fails** unless the 200k rung's aggregate speedup clears
  :data:`MIN_SPEEDUP_200K`.  This is the nightly / acceptance run.
- ``pytest benchmarks/bench_offline.py`` — a quicker smoke (2k jobs, both
  engines, parity + never-slower), committed-JSON assertions, plus
  pytest-benchmark measurements of the columnar side alone.

The workload keeps a realistic steady concurrency (~30 active jobs: the
horizon scales with n) so the object path's per-arrival pairwise forbidden
set stays tractable at 200k while the columnar path's incremental event
sweep shows its asymptotic advantage.  Correctness equivalence is pinned
separately by ``tests/property/test_columnar_parity.py`` — the parity
asserts here only guard against benchmarking two different answers.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import Job, JobSet, Ladder, dec_ladder, inc_ladder
from repro.offline.dec_offline import dec_offline
from repro.offline.dual_coloring import dual_coloring_assign
from repro.offline.general_offline import general_offline
from repro.offline.inc_offline import inc_offline

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_offline.json"

N_JOBS = 10_000
#: every algorithm must beat the object path by this factor at 10k jobs
#: (INC-OFFLINE is the thinnest: its per-class subproblems are small, so
#: object-path overhead is lowest there — measured ~3.7x on the reference
#: machine, floored with CI-noise headroom)
MIN_SPEEDUP = 2.5

#: job counts of the DEC-OFFLINE acceptance ladder
OFFLINE_LADDER_RUNGS = (10_000, 50_000, 200_000)
#: required aggregate (object time / columnar time) at the 200k rung
MIN_SPEEDUP_200K = 5.0
#: every rung must at least not lose
MIN_LADDER_RUNG_SPEEDUP = 1.0

GENERAL_LADDER = Ladder.from_pairs(
    [(1.0, 1.0), (2.0, 3.0), (4.0, 4.0), (8.0, 20.0), (16.0, 21.0)]
)


def make_offline_workload(n: int, max_size: float, seed: int = 2020) -> JobSet:
    """Jobs with ~30 steady concurrent arrivals (horizon grows with n)."""
    rng = np.random.default_rng(seed)
    horizon = n / 2.0
    arrivals = rng.uniform(0.0, horizon, size=n)
    durations = rng.uniform(5.0, 25.0, size=n)
    sizes = rng.uniform(0.05, max_size, size=n)
    return JobSet(
        Job(arrival=float(a), departure=float(a + d), size=float(s), uid=i)
        for i, (a, d, s) in enumerate(zip(arrivals, durations, sizes))
    )


def _best_of(fn, reps: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_suite(n: int = N_JOBS, *, reps: int = 1) -> list[dict]:
    """Time every offline algorithm through both engines; assert parity."""
    dec6 = dec_ladder(6)
    inc6 = inc_ladder(6)
    dec_jobs = make_offline_workload(n, dec6.capacity(6))
    inc_jobs = make_offline_workload(n, inc6.capacity(6))
    gen_jobs = make_offline_workload(n, GENERAL_LADDER.capacity(5))

    cases = [
        ("dec_offline", lambda e: dec_offline(dec_jobs, dec6, engine=e)),
        ("inc_offline", lambda e: inc_offline(inc_jobs, inc6, engine=e)),
        (
            "general_offline",
            lambda e: general_offline(gen_jobs, GENERAL_LADDER, engine=e),
        ),
        (
            "dual_coloring",
            lambda e: dual_coloring_assign(
                gen_jobs,
                capacity=GENERAL_LADDER.capacity(5),
                type_index=5,
                engine=e,
            ),
        ),
    ]

    rows = []
    for name, run in cases:
        t_col, col = _best_of(lambda: run("columnar"), reps=reps)
        t_obj, obj = _best_of(lambda: run("object"), reps=reps)
        obj_assign = obj if isinstance(obj, dict) else obj.assignment
        col_assign = col if isinstance(col, dict) else col.assignment
        if obj_assign != col_assign or list(obj_assign) != list(col_assign):
            raise AssertionError(f"{name}: engines disagree — not benchmarkable")
        rows.append(
            {
                "algorithm": name,
                "object_ms": round(t_obj * 1e3, 3),
                "columnar_ms": round(t_col * 1e3, 3),
                "speedup": round(t_obj / t_col, 1),
            }
        )
    return rows


def run_offline_ladder(
    rungs: tuple[int, ...] = OFFLINE_LADDER_RUNGS, *, reps: int = 1
) -> list[dict]:
    """DEC-OFFLINE object-vs-columnar timings at each rung."""
    dec6 = dec_ladder(6)
    out = []
    for n in rungs:
        jobs = make_offline_workload(n, dec6.capacity(6))
        t_col, col = _best_of(
            lambda: dec_offline(jobs, dec6, engine="columnar"), reps=reps
        )
        t_obj, obj = _best_of(
            lambda: dec_offline(jobs, dec6, engine="object"), reps=reps
        )
        if obj.assignment != col.assignment:
            raise AssertionError("engines disagree at the ladder rung")
        out.append(
            {
                "n_jobs": n,
                "object_ms": round(t_obj * 1e3, 3),
                "columnar_ms": round(t_col * 1e3, 3),
                "speedup": round(t_obj / t_col, 1),
            }
        )
    return out


def _print_rows(rows: list[dict], key: str) -> None:
    width = max(len(str(r[key])) for r in rows)
    print(f"{key:<{width}}  {'object':>11}  {'columnar':>11}  speedup")
    for r in rows:
        print(
            f"{str(r[key]):<{width}}  {r['object_ms']:>9.1f}ms"
            f"  {r['columnar_ms']:>9.1f}ms  {r['speedup']:>6.1f}x"
        )


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    with_ladder = "--ladder" in args

    rows = run_suite()
    payload = {
        "workload": {"n_jobs": N_JOBS, "seed": 2020, "concurrency": "~30"},
        "min_speedup_required": MIN_SPEEDUP,
        "algorithms": rows,
    }
    if with_ladder:
        payload["dec_ladder"] = {
            "rungs": run_offline_ladder(),
            "min_speedup_at_200k": MIN_SPEEDUP_200K,
            "min_rung_speedup": MIN_LADDER_RUNG_SPEEDUP,
        }
    else:
        # keep the committed acceptance ladder: the default (CI smoke) run
        # only refreshes the 10k algorithm section
        try:
            payload["dec_ladder"] = json.loads(OUTPUT.read_text())["dec_ladder"]
        except (OSError, KeyError, json.JSONDecodeError):
            pass
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")

    _print_rows(rows, "algorithm")
    slow = [r for r in rows if r["speedup"] < MIN_SPEEDUP]
    if slow:
        names = ", ".join(r["algorithm"] for r in slow)
        print(f"FAIL: below the {MIN_SPEEDUP}x floor: {names}")
        return 1
    if with_ladder:
        ladder = payload["dec_ladder"]["rungs"]
        print("-- DEC-OFFLINE ladder --")
        _print_rows(ladder, "n_jobs")
        top = next(r for r in ladder if r["n_jobs"] == max(OFFLINE_LADDER_RUNGS))
        if top["speedup"] < MIN_SPEEDUP_200K:
            print(
                f"FAIL: 200k-rung speedup {top['speedup']}x below the "
                f"{MIN_SPEEDUP_200K}x columnar floor"
            )
            return 1
        lagging = [
            r["n_jobs"] for r in ladder if r["speedup"] < MIN_LADDER_RUNG_SPEEDUP
        ]
        if lagging:
            print(f"FAIL: columnar slower than object at rungs: {lagging}")
            return 1
    print(
        f"OK: every algorithm >= {MIN_SPEEDUP}x faster; written to {OUTPUT.name}"
    )
    return 0


# ---------------------------------------------------------------------------
# pytest entry points (CI smoke + microbenchmarks)
# ---------------------------------------------------------------------------

def test_columnar_never_slower_than_object():
    """CI smoke: on a 2k-job workload every columnar engine beats the object
    path (run_suite itself asserts the assignments are identical)."""
    for row in run_suite(n=2_000):
        assert row["speedup"] >= 1.0, row


def test_committed_bench_shows_target_speedup():
    """The committed BENCH_offline.json records the acceptance-floor run."""
    payload = json.loads(OUTPUT.read_text())
    assert payload["workload"]["n_jobs"] == N_JOBS
    names = {r["algorithm"] for r in payload["algorithms"]}
    assert names == {
        "dec_offline",
        "inc_offline",
        "general_offline",
        "dual_coloring",
    }
    for row in payload["algorithms"]:
        assert row["speedup"] >= MIN_SPEEDUP, row


def test_committed_offline_ladder_shows_target_speedup():
    """The committed ladder records the 200k-rung >= 5x acceptance run."""
    payload = json.loads(OUTPUT.read_text())
    ladder = payload["dec_ladder"]
    rung_sizes = [r["n_jobs"] for r in ladder["rungs"]]
    assert rung_sizes == list(OFFLINE_LADDER_RUNGS)
    for rung in ladder["rungs"]:
        assert rung["speedup"] >= MIN_LADDER_RUNG_SPEEDUP, rung
    top = next(
        r
        for r in ladder["rungs"]
        if r["n_jobs"] == max(OFFLINE_LADDER_RUNGS)
    )
    assert top["speedup"] >= MIN_SPEEDUP_200K, top


def test_bench_columnar_dec_offline_10k(benchmark):
    dec6 = dec_ladder(6)
    jobs = make_offline_workload(N_JOBS, dec6.capacity(6))
    schedule = benchmark(dec_offline, jobs, dec6, engine="columnar")
    assert schedule.cost() > 0


def test_bench_columnar_altitudes_10k(benchmark):
    from repro.placement.columnar import columnar_altitudes

    jobs = make_offline_workload(N_JOBS, 8.0)
    arrays = jobs.to_arrays()
    alts = benchmark(
        columnar_altitudes, arrays.starts, arrays.ends, arrays.sizes
    )
    assert alts.size == N_JOBS


if __name__ == "__main__":
    sys.exit(main())
